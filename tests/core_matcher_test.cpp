#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/ptrider.h"
#include "roadnet/graph_generator.h"
#include "roadnet/paper_example.h"
#include "util/random.h"

namespace ptrider::core {
namespace {

using roadnet::MakePaperExampleNetwork;
using roadnet::PaperExampleNetwork;

/// Config matching the paper's worked example: unit speed, price per
/// distance unit, capacity 4, no pickup-radius truncation.
Config PaperConfig() {
  Config cfg;
  cfg.speed_mps = 1.0;
  cfg.vehicle_capacity = 4;
  cfg.default_max_wait_s = 5.0;
  cfg.default_service_sigma = 0.2;
  cfg.price_distance_unit_m = 1.0;
  cfg.max_planned_pickup_s = 1e6;
  return cfg;
}

vehicle::Request PaperR2(const PaperExampleNetwork& ex) {
  vehicle::Request r2;
  r2.id = 2;
  r2.start = ex.v(12);
  r2.destination = ex.v(17);
  r2.num_riders = 2;
  r2.max_wait_s = 5.0;
  r2.service_sigma = 0.2;
  return r2;
}

/// Builds the Section-2 scenario: c1 at v1 serving R1 = <v2,v16,2,5,0.2>,
/// empty c2 at v13.
std::unique_ptr<PTRider> MakePaperScenario(const PaperExampleNetwork& ex,
                                           MatcherAlgorithm algo) {
  Config cfg = PaperConfig();
  cfg.matcher = algo;
  roadnet::GridIndexOptions gopts;
  gopts.cells_x = 3;
  gopts.cells_y = 3;
  auto sys = PTRider::Create(ex.graph, cfg, gopts);
  EXPECT_TRUE(sys.ok());
  auto ptr = std::move(sys).value();

  const auto c1 = ptr->AddVehicle(ex.v(1));
  const auto c2 = ptr->AddVehicle(ex.v(13));
  EXPECT_TRUE(c1.ok());
  EXPECT_TRUE(c2.ok());

  vehicle::Request r1;
  r1.id = 1;
  r1.start = ex.v(2);
  r1.destination = ex.v(16);
  r1.num_riders = 2;
  r1.max_wait_s = 5.0;
  r1.service_sigma = 0.2;
  auto match = ptr->SubmitRequest(r1, 0.0);
  EXPECT_TRUE(match.ok());
  // c1 offers the direct pickup at distance 6; choose it.
  const Option* chosen = nullptr;
  for (const Option& o : match->options) {
    if (o.vehicle == *c1 && o.pickup_distance == 6.0) chosen = &o;
  }
  EXPECT_NE(chosen, nullptr);
  EXPECT_TRUE(ptr->ChooseOption(r1, *chosen, 0.0).ok());
  return ptr;
}

class PaperMatchTest
    : public ::testing::TestWithParam<MatcherAlgorithm> {};

TEST_P(PaperMatchTest, Section2OptionsReproduceExactly) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  auto sys = MakePaperScenario(ex, GetParam());
  const auto result = sys->SubmitRequest(PaperR2(ex), 0.0);
  ASSERT_TRUE(result.ok());

  // Exactly the paper's two non-dominated options:
  //   r1 = <c1, 14, 4> and r2 = <c2, 8, 8.8>.
  ASSERT_EQ(result->options.size(), 2u)
      << MatcherAlgorithmName(GetParam());
  const Option& o_c2 = result->options[0];  // sorted by pickup distance
  const Option& o_c1 = result->options[1];
  EXPECT_EQ(o_c2.vehicle, 1);
  EXPECT_DOUBLE_EQ(o_c2.pickup_distance, 8.0);
  EXPECT_DOUBLE_EQ(o_c2.price, 8.8);
  EXPECT_EQ(o_c1.vehicle, 0);
  EXPECT_DOUBLE_EQ(o_c1.pickup_distance, 14.0);
  EXPECT_DOUBLE_EQ(o_c1.price, 4.0);
}

TEST_P(PaperMatchTest, DominatedInsertionFilteredOut) {
  // c1 also admits "serve R1 fully then R2" at (22, 7.2): dominated by
  // (14, 4) and must not be reported.
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  auto sys = MakePaperScenario(ex, GetParam());
  const auto result = sys->SubmitRequest(PaperR2(ex), 0.0);
  ASSERT_TRUE(result.ok());
  for (const Option& o : result->options) {
    EXPECT_NE(o.pickup_distance, 22.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, PaperMatchTest,
                         ::testing::Values(MatcherAlgorithm::kNaive,
                                           MatcherAlgorithm::kSingleSide,
                                           MatcherAlgorithm::kDualSide),
                         [](const auto& suite_info) {
                           switch (suite_info.param) {
                             case MatcherAlgorithm::kNaive:
                               return "Naive";
                             case MatcherAlgorithm::kSingleSide:
                               return "SingleSide";
                             case MatcherAlgorithm::kDualSide:
                               return "DualSide";
                           }
                           return "Unknown";
                         });

TEST(MatcherValidationTest, RejectsBadRequests) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  auto sys = PTRider::Create(ex.graph, PaperConfig());
  ASSERT_TRUE(sys.ok());
  vehicle::Request r = PaperR2(ex);
  r.start = -1;
  EXPECT_FALSE((*sys)->SubmitRequest(r, 0.0).ok());
  r = PaperR2(ex);
  r.destination = r.start;
  EXPECT_FALSE((*sys)->SubmitRequest(r, 0.0).ok());
  r = PaperR2(ex);
  r.num_riders = 0;
  EXPECT_FALSE((*sys)->SubmitRequest(r, 0.0).ok());
  r = PaperR2(ex);
  r.max_wait_s = -1.0;
  EXPECT_FALSE((*sys)->SubmitRequest(r, 0.0).ok());
}

TEST(MatcherValidationTest, NoVehiclesMeansNoOptions) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  auto sys = PTRider::Create(ex.graph, PaperConfig());
  ASSERT_TRUE(sys.ok());
  const auto result = (*sys)->SubmitRequest(PaperR2(ex), 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->options.empty());
}

TEST(MatcherValidationTest, GroupLargerThanCapacityGetsNoOptions) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  Config cfg = PaperConfig();
  cfg.vehicle_capacity = 2;
  auto sys = PTRider::Create(ex.graph, cfg);
  ASSERT_TRUE(sys.ok());
  ASSERT_TRUE((*sys)->AddVehicle(ex.v(13)).ok());
  vehicle::Request r = PaperR2(ex);
  r.num_riders = 3;
  const auto result = (*sys)->SubmitRequest(r, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->options.empty());
}

TEST(MatcherValidationTest, PickupRadiusTruncatesFarOptions) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  Config cfg = PaperConfig();
  cfg.max_planned_pickup_s = 7.0;  // radius 7 at unit speed
  auto sys = PTRider::Create(ex.graph, cfg);
  ASSERT_TRUE(sys.ok());
  // c2 at v13 is 8 away from v12: beyond the radius.
  ASSERT_TRUE((*sys)->AddVehicle(ex.v(13)).ok());
  const auto result = (*sys)->SubmitRequest(PaperR2(ex), 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->options.empty());
}

/// Randomized scenario equivalence: naive, single-side and dual-side must
/// return the same option sets after any sequence of commitments.
struct EquivalenceParam {
  uint64_t seed;
  size_t num_vehicles;
  int capacity;
};

class MatcherEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(MatcherEquivalenceTest, AllMatchersAgree) {
  const EquivalenceParam param = GetParam();
  roadnet::CityGridOptions gopts;
  gopts.rows = 14;
  gopts.cols = 14;
  gopts.seed = param.seed;
  auto graph = roadnet::MakeCityGrid(gopts);
  ASSERT_TRUE(graph.ok());

  Config cfg;
  cfg.vehicle_capacity = param.capacity;
  cfg.default_max_wait_s = 240.0;
  cfg.default_service_sigma = 0.4;
  cfg.max_planned_pickup_s = 600.0;
  roadnet::GridIndexOptions gridopts;
  gridopts.cells_x = 6;
  gridopts.cells_y = 6;
  auto sys = PTRider::Create(*graph, cfg, gridopts);
  ASSERT_TRUE(sys.ok());
  ASSERT_TRUE(
      (*sys)->InitFleetUniform(param.num_vehicles, param.seed).ok());

  util::Rng rng(param.seed * 7919 + 13);
  const auto random_vertex = [&]() {
    return static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(graph->NumVertices()) - 1));
  };

  double now = 0.0;
  for (int step = 0; step < 25; ++step) {
    vehicle::Request r;
    r.id = step + 1;
    r.start = random_vertex();
    r.destination = random_vertex();
    if (r.start == r.destination) continue;
    r.num_riders = static_cast<int>(rng.UniformInt(1, 2));
    r.max_wait_s = cfg.default_max_wait_s;
    r.service_sigma = cfg.default_service_sigma;
    r.submit_time_s = now;

    MatchResult results[3];
    const MatcherAlgorithm algos[] = {MatcherAlgorithm::kNaive,
                                      MatcherAlgorithm::kSingleSide,
                                      MatcherAlgorithm::kDualSide};
    for (int a = 0; a < 3; ++a) {
      (*sys)->set_matcher(algos[a]);
      auto res = (*sys)->SubmitRequest(r, now);
      ASSERT_TRUE(res.ok());
      results[a] = std::move(res).value();
    }
    for (int a = 1; a < 3; ++a) {
      ASSERT_EQ(results[a].options.size(), results[0].options.size())
          << "step " << step << " algo " << MatcherAlgorithmName(algos[a]);
      for (size_t i = 0; i < results[0].options.size(); ++i) {
        const Option& expect = results[0].options[i];
        const Option& got = results[a].options[i];
        EXPECT_EQ(got.vehicle, expect.vehicle) << "step " << step;
        EXPECT_DOUBLE_EQ(got.pickup_distance, expect.pickup_distance);
        EXPECT_DOUBLE_EQ(got.price, expect.price);
      }
      // Indexed matchers must never examine more vehicles than naive.
      EXPECT_LE(results[a].vehicles_examined, results[0].vehicles_examined);
    }
    // Dual-side prunes at least as much as single-side.
    EXPECT_GE(results[2].vehicles_pruned, results[1].vehicles_pruned);

    // Commit a random option (rider choice) to evolve vehicle state.
    if (!results[0].options.empty()) {
      const size_t pick = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(results[0].options.size()) - 1));
      ASSERT_TRUE(
          (*sys)->ChooseOption(r, results[0].options[pick], now).ok());
    }
    now += rng.UniformDouble(5.0, 30.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, MatcherEquivalenceTest,
    ::testing::Values(EquivalenceParam{1, 30, 3},
                      EquivalenceParam{2, 60, 4},
                      EquivalenceParam{3, 15, 2},
                      EquivalenceParam{4, 100, 3},
                      EquivalenceParam{5, 45, 6}));

}  // namespace
}  // namespace ptrider::core
