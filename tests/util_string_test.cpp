#include "util/string_util.h"

#include <gtest/gtest.h>

namespace ptrider::util {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("xyz", ','), (std::vector<std::string>{"xyz"}));
}

TEST(TrimTest, RemovesAsciiWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nfoo\r "), "foo");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
  // Long output exceeding any small internal buffer.
  const std::string big = StrFormat("%0512d", 3);
  EXPECT_EQ(big.size(), 512u);
}

TEST(ParseIntTest, StrictParsing) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-17").value(), -17);
  EXPECT_EQ(ParseInt(" 8 ").value(), 8);  // surrounding spaces trimmed
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999").ok());  // overflow
}

TEST(ParseDoubleTest, StrictParsing) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble(" 2 ").value(), 2.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("3.1.4").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(FormatDurationTest, PicksSensibleUnits) {
  EXPECT_EQ(FormatDuration(3e-9), "3.0 ns");
  EXPECT_EQ(FormatDuration(4.2e-6), "4.20 us");
  EXPECT_EQ(FormatDuration(0.0123), "12.30 ms");
  EXPECT_EQ(FormatDuration(2.5), "2.50 s");
  EXPECT_EQ(FormatDuration(150.0), "2.5 min");
}

TEST(FormatCountTest, PicksSensibleUnits) {
  EXPECT_EQ(FormatCount(12.0), "12");
  EXPECT_EQ(FormatCount(4500.0), "4.5k");
  EXPECT_EQ(FormatCount(2.5e6), "2.50M");
  EXPECT_EQ(FormatCount(3e9), "3.00G");
}

}  // namespace
}  // namespace ptrider::util
