// Pricing subsystem coverage: Definition-3 equivalence of PaperPolicy
// against the legacy core::PriceModel, bound admissibility of every
// shipped policy (the contract that keeps single-side/dual-side pruning
// exact), surge monotonicity in the demand signal, and byte-identical
// matcher results across naive/single-side/dual-side under every policy.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/price.h"
#include "core/ptrider.h"
#include "pricing/factory.h"
#include "pricing/paper_policy.h"
#include "pricing/shared_discount_policy.h"
#include "pricing/surge_policy.h"
#include "roadnet/graph_generator.h"
#include "util/random.h"

namespace ptrider::pricing {
namespace {

core::PriceModel PaperModel() { return core::PriceModel(0.3, 0.1, 1.0); }

QuoteInputs MakeQuote(int riders, int committed, double current,
                      double delta, double direct) {
  QuoteInputs q;
  q.num_riders = riders;
  q.committed_riders = committed;
  q.current_total = current;
  q.new_total = current + delta;
  q.direct = direct;
  return q;
}

TEST(PaperPolicyTest, WorkedExampleMatchesLegacyModel) {
  const PaperPolicy policy(PaperModel());
  // r1 = <c1, 14, 4>: two riders join c1, detour 21 - 18 = 3, direct 7.
  EXPECT_EQ(policy.Price(MakeQuote(2, 2, 18.0, 3.0, 7.0)), 4.0);
  // r2 = <c2, 8, 8.8>: empty c2, pickup 8, direct 7.
  EXPECT_EQ(policy.Price(MakeQuote(2, 0, 0.0, 15.0, 7.0)), 8.8);
  EXPECT_EQ(policy.EmptyVehiclePrice(2, 8.0, 7.0), 8.8);
}

TEST(PaperPolicyTest, BitForBitEquivalentToLegacyModel) {
  const core::PriceModel legacy = PaperModel();
  const PaperPolicy policy(legacy);
  util::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const double direct = rng.UniformDouble(0.5, 5000.0);
    const double current = rng.UniformDouble(0.0, 9000.0);
    const double delta = rng.UniformDouble(0.0, 3000.0);
    const double pickup = rng.UniformDouble(0.0, 2000.0);
    const int n = static_cast<int>(rng.UniformInt(1, 4));
    const int committed = static_cast<int>(rng.UniformInt(0, 4));
    // Exact equality: the policy must perform the identical arithmetic.
    EXPECT_EQ(policy.Price(MakeQuote(n, committed, current, delta, direct)),
              legacy.Price(n, current + delta, current, direct));
    EXPECT_EQ(policy.MinPrice(n, direct), legacy.MinPrice(n, direct));
    EXPECT_EQ(policy.EmptyVehiclePrice(n, pickup, direct),
              legacy.EmptyVehiclePrice(n, pickup, direct));
    EXPECT_EQ(policy.PriceWithDetourLb(n, delta, direct),
              legacy.PriceWithDetourLb(n, delta, direct));
  }
}

/// Drives the policy through randomized realizable quotes and checks the
/// PricingPolicy bound contract: no bound ever exceeds a realizable price.
void CheckBoundAdmissibility(PricingPolicy& policy, uint64_t seed) {
  util::Rng rng(seed);
  double now = 0.0;
  for (int i = 0; i < 3000; ++i) {
    // Occasionally move the demand signal so stateful policies are tested
    // across their multiplier range.
    if (i % 7 == 0) {
      now += rng.UniformDouble(0.0, 30.0);
      policy.RecordRequest(now);
    }
    const double direct = rng.UniformDouble(0.5, 5000.0);
    const int n = static_cast<int>(rng.UniformInt(1, 4));
    const int committed = static_cast<int>(rng.UniformInt(0, 4));
    const double current =
        committed == 0 ? 0.0 : rng.UniformDouble(0.0, 9000.0);
    const double detour_lb = rng.UniformDouble(0.0, 1000.0);
    const double delta = detour_lb + rng.UniformDouble(0.0, 2000.0);
    const double price =
        policy.Price(MakeQuote(n, committed, current, delta, direct));

    // MinPrice floors every realizable quote (Delta >= 0).
    EXPECT_LE(policy.MinPrice(n, direct), price + 1e-9)
        << policy.name() << " MinPrice not admissible";
    // PriceWithDetourLb floors every quote whose detour >= the bound.
    EXPECT_LE(policy.PriceWithDetourLb(n, detour_lb, direct), price + 1e-9)
        << policy.name() << " PriceWithDetourLb not admissible";

    // Empty vehicles: quote with pickup >= pickup_lb must dominate the
    // bound, and the bound must be monotone in the pickup lower bound.
    const double pickup_lb = rng.UniformDouble(0.0, 2000.0);
    const double pickup = pickup_lb + rng.UniformDouble(0.0, 1000.0);
    const double empty_price =
        policy.Price(MakeQuote(n, 0, 0.0, pickup + direct, direct));
    EXPECT_LE(policy.EmptyVehiclePrice(n, pickup_lb, direct),
              empty_price + 1e-9)
        << policy.name() << " EmptyVehiclePrice not admissible";
    EXPECT_LE(policy.EmptyVehiclePrice(n, pickup_lb, direct),
              policy.EmptyVehiclePrice(n, pickup_lb + 1.0, direct) + 1e-12)
        << policy.name() << " EmptyVehiclePrice not monotone";
  }
}

TEST(BoundAdmissibilityTest, PaperPolicy) {
  PaperPolicy policy(PaperModel());
  CheckBoundAdmissibility(policy, 7);
}

TEST(BoundAdmissibilityTest, SurgePolicy) {
  SurgeOptions opts;
  opts.window_s = 120.0;
  opts.baseline_rate_per_min = 1.0;
  opts.gain_per_rate = 0.3;
  opts.max_multiplier = 3.0;
  SurgePolicy policy(PaperModel(), opts);
  CheckBoundAdmissibility(policy, 11);
}

TEST(BoundAdmissibilityTest, SharedDiscountPolicy) {
  SharedDiscountOptions opts;
  opts.per_committed_rider = 0.08;
  opts.max_discount = 0.3;
  SharedDiscountPolicy policy(PaperModel(), opts);
  CheckBoundAdmissibility(policy, 13);
}

TEST(SurgePolicyTest, MultiplierMonotoneInDemandRate) {
  SurgeOptions opts;
  opts.window_s = 60.0;
  opts.baseline_rate_per_min = 5.0;
  opts.gain_per_rate = 0.1;
  opts.max_multiplier = 2.0;

  // Feed request streams of increasing rate into fresh policies; the
  // resulting multiplier must be non-decreasing in the rate.
  double previous_multiplier = 0.0;
  for (const int per_minute : {1, 5, 10, 20, 40, 80, 200}) {
    SurgePolicy policy(PaperModel(), opts);
    const double spacing = 60.0 / per_minute;
    for (double t = 0.0; t < 60.0; t += spacing) policy.RecordRequest(t);
    EXPECT_GE(policy.multiplier(), previous_multiplier);
    EXPECT_GE(policy.multiplier(), 1.0);
    EXPECT_LE(policy.multiplier(), opts.max_multiplier);
    previous_multiplier = policy.multiplier();
  }
  EXPECT_GT(previous_multiplier, 1.0);  // heavy demand actually surges

  // Prices scale with the multiplier.
  SurgePolicy calm(PaperModel(), opts);
  calm.RecordRequest(0.0);
  SurgePolicy busy(PaperModel(), opts);
  for (double t = 0.0; t < 60.0; t += 0.25) busy.RecordRequest(t);
  const QuoteInputs q = MakeQuote(2, 1, 100.0, 30.0, 50.0);
  EXPECT_GT(busy.multiplier(), calm.multiplier());
  EXPECT_EQ(busy.Price(q), busy.multiplier() * calm.Price(q));

  // The window forgets: after a quiet stretch the multiplier relaxes.
  busy.RecordRequest(10000.0);
  EXPECT_EQ(busy.multiplier(), 1.0);
}

// Regression: the multiplier used to be recomputed only inside
// RecordRequest, so after a demand lull every quote taken before the
// next submission still paid the last burst's surge, and rate_per_min()
// read the stale window. Decay is the quote-time hook: it evicts the
// window and relaxes the multiplier without touching the demand signal.
TEST(SurgePolicyTest, DecayRelaxesMultiplierAfterLull) {
  SurgeOptions opts;
  opts.window_s = 120.0;
  opts.baseline_rate_per_min = 1.0;
  opts.gain_per_rate = 0.2;
  opts.max_multiplier = 3.0;
  SurgePolicy policy(PaperModel(), opts);
  for (double t = 0.0; t < 60.0; t += 0.5) policy.RecordRequest(t);
  ASSERT_GT(policy.multiplier(), 1.0);
  ASSERT_GT(policy.rate_per_min(), opts.baseline_rate_per_min);
  const double surged = policy.multiplier();
  const QuoteInputs q = MakeQuote(1, 0, 0.0, 900.0, 700.0);
  EXPECT_EQ(policy.Price(q),
            surged * PaperModel().Price(1, 900.0, 0.0, 700.0));

  // An hour of silence: the quote path decays before quoting, so the
  // rider pays the un-surged fare — pre-fix the peak multiplier stuck.
  policy.Decay(3600.0);
  EXPECT_EQ(policy.multiplier(), 1.0);
  EXPECT_EQ(policy.rate_per_min(), 0.0);
  EXPECT_EQ(policy.Price(q), PaperModel().Price(1, 900.0, 0.0, 700.0));

  // Bounds were demand-free before and stay so across decay (the
  // conservative-bound contract, DESIGN.md 4.4).
  EXPECT_EQ(policy.MinPrice(1, 700.0), PaperModel().MinPrice(1, 700.0));
}

// Decay(t) followed by RecordRequest(t) must leave exactly the state a
// lone RecordRequest(t) produces — the quote paths decay defensively, so
// any divergence would break the sequential/parallel dispatch and
// per-request/batched determinism contracts.
TEST(SurgePolicyTest, DecayThenRecordEqualsRecordAlone) {
  SurgeOptions opts;
  opts.window_s = 90.0;
  opts.baseline_rate_per_min = 0.5;
  opts.gain_per_rate = 0.4;
  opts.max_multiplier = 2.2;
  SurgePolicy with_decay(PaperModel(), opts);
  SurgePolicy record_only(PaperModel(), opts);
  util::Rng rng(99);
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += rng.Exponential(0.2);  // bursts and lulls
    with_decay.Decay(t);
    with_decay.RecordRequest(t);
    record_only.RecordRequest(t);
    ASSERT_EQ(with_decay.multiplier(), record_only.multiplier());
    ASSERT_EQ(with_decay.rate_per_min(), record_only.rate_per_min());
  }
  // Snapshots taken after a decayed record quote identically too.
  const QuoteInputs q = MakeQuote(2, 1, 500.0, 800.0, 400.0);
  EXPECT_EQ(with_decay.SnapshotForQuote()->Price(q),
            record_only.SnapshotForQuote()->Price(q));
}

TEST(SurgePolicyTest, CapRespectedUnderExtremeDemand) {
  SurgeOptions opts;
  opts.window_s = 60.0;
  opts.baseline_rate_per_min = 0.0;
  opts.gain_per_rate = 1.0;
  opts.max_multiplier = 1.7;
  SurgePolicy policy(PaperModel(), opts);
  for (int i = 0; i < 100000; ++i) policy.RecordRequest(50.0);
  EXPECT_EQ(policy.multiplier(), 1.7);
}

TEST(SharedDiscountPolicyTest, DiscountGrowsWithOccupancyAndCaps) {
  SharedDiscountOptions opts;
  opts.per_committed_rider = 0.1;
  opts.max_discount = 0.25;
  const SharedDiscountPolicy policy(PaperModel(), opts);
  const core::PriceModel legacy = PaperModel();

  // Empty vehicle: full paper fare, bit for bit.
  EXPECT_EQ(policy.Price(MakeQuote(2, 0, 0.0, 15.0, 7.0)),
            legacy.Price(2, 15.0, 0.0, 7.0));

  // Fares decrease in occupancy until the cap.
  double previous = policy.Price(MakeQuote(2, 0, 100.0, 20.0, 50.0));
  for (int committed = 1; committed <= 5; ++committed) {
    const double price =
        policy.Price(MakeQuote(2, committed, 100.0, 20.0, 50.0));
    EXPECT_LE(price, previous);
    EXPECT_GE(price, (1.0 - opts.max_discount) *
                         legacy.Price(2, 120.0, 100.0, 50.0) - 1e-12);
    previous = price;
  }
  EXPECT_DOUBLE_EQ(policy.DiscountFor(2), 0.2);
  EXPECT_DOUBLE_EQ(policy.DiscountFor(4), 0.25);  // capped
  EXPECT_DOUBLE_EQ(policy.DiscountFor(0), 0.0);
}

TEST(FactoryTest, CreatesSelectedPolicyAndValidates) {
  core::Config cfg;
  cfg.pricing_policy = core::PricingPolicyKind::kPaper;
  auto paper = CreatePricingPolicy(cfg);
  ASSERT_TRUE(paper.ok());
  EXPECT_STREQ((*paper)->name(), "paper");

  cfg.pricing_policy = core::PricingPolicyKind::kSurge;
  auto surge = CreatePricingPolicy(cfg);
  ASSERT_TRUE(surge.ok());
  EXPECT_STREQ((*surge)->name(), "surge");

  cfg.pricing_policy = core::PricingPolicyKind::kSharedDiscount;
  auto discount = CreatePricingPolicy(cfg);
  ASSERT_TRUE(discount.ok());
  EXPECT_STREQ((*discount)->name(), "shared-discount");

  cfg.surge_max_multiplier = 0.5;  // < 1: would undercut the bounds
  EXPECT_FALSE(CreatePricingPolicy(cfg).ok());
  cfg = core::Config{};
  cfg.shared_discount_max = 1.0;  // free rides break MinPrice > 0
  EXPECT_FALSE(CreatePricingPolicy(cfg).ok());
  cfg = core::Config{};
  cfg.surge_window_s = 0.0;
  EXPECT_FALSE(CreatePricingPolicy(cfg).ok());

  EXPECT_STREQ(core::PricingPolicyKindName(core::PricingPolicyKind::kPaper),
               "paper");
  EXPECT_STREQ(core::PricingPolicyKindName(core::PricingPolicyKind::kSurge),
               "surge");
  EXPECT_STREQ(
      core::PricingPolicyKindName(core::PricingPolicyKind::kSharedDiscount),
      "shared-discount");
}

// --- Matcher equivalence under every policy --------------------------------

/// Warm-started system + probe requests; the three matchers must return
/// byte-identical option sets whichever policy quotes the fares.
void CheckMatcherEquivalence(core::PricingPolicyKind kind, uint64_t seed) {
  roadnet::CityGridOptions gopts;
  gopts.rows = 10;
  gopts.cols = 10;
  gopts.seed = seed;
  auto graph = roadnet::MakeCityGrid(gopts);
  ASSERT_TRUE(graph.ok());

  core::Config cfg;
  cfg.pricing_policy = kind;
  cfg.default_service_sigma = 0.4;
  cfg.max_planned_pickup_s = 600.0;
  // Make surge kick in at the modest test request rate.
  cfg.surge_baseline_rate_per_min = 0.5;
  cfg.surge_gain_per_rate = 0.2;
  roadnet::GridIndexOptions gridopts;
  gridopts.cells_x = 5;
  gridopts.cells_y = 5;
  auto sys = core::PTRider::Create(*graph, cfg, gridopts);
  ASSERT_TRUE(sys.ok());
  core::PTRider& pt = **sys;
  ASSERT_TRUE(pt.InitFleetUniform(30, seed * 3 + 1).ok());

  util::Rng rng(seed * 17 + 5);
  auto rv = [&]() {
    return static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(graph->NumVertices()) - 1));
  };
  auto make_request = [&](vehicle::RequestId id) {
    vehicle::Request r;
    r.id = id;
    r.start = rv();
    do {
      r.destination = rv();
    } while (r.destination == r.start);
    r.num_riders = static_cast<int>(rng.UniformInt(1, 3));
    r.max_wait_s = cfg.default_max_wait_s;
    r.service_sigma = cfg.default_service_sigma;
    return r;
  };

  // Load the fleet (and the demand window) with committed requests.
  int assigned = 0;
  for (int i = 0; i < 60 && assigned < 25; ++i) {
    const vehicle::Request r = make_request(1000 + i);
    auto m = pt.SubmitRequest(r, static_cast<double>(i));
    ASSERT_TRUE(m.ok());
    if (m->options.empty()) continue;
    ASSERT_TRUE(
        pt.ChooseOption(r, m->options.front(), static_cast<double>(i)).ok());
    ++assigned;
  }
  ASSERT_GT(assigned, 10);

  if (kind == core::PricingPolicyKind::kSurge) {
    const auto& surge =
        dynamic_cast<const SurgePolicy&>(pt.pricing_policy());
    EXPECT_GT(surge.multiplier(), 1.0)
        << "surge inactive: the equivalence check would not exercise it";
  }

  // Probe: matcher().Match directly so the demand signal stays frozen
  // across the three algorithms.
  const vehicle::ScheduleContext sctx = pt.MakeScheduleContext(60.0);
  int compared_options = 0;
  for (int i = 0; i < 40; ++i) {
    const vehicle::Request r = make_request(5000 + i);
    pt.set_matcher(core::MatcherAlgorithm::kNaive);
    const core::MatchResult naive = pt.matcher().Match(r, sctx);
    pt.set_matcher(core::MatcherAlgorithm::kSingleSide);
    const core::MatchResult single = pt.matcher().Match(r, sctx);
    pt.set_matcher(core::MatcherAlgorithm::kDualSide);
    const core::MatchResult dual = pt.matcher().Match(r, sctx);

    for (const core::MatchResult* other : {&single, &dual}) {
      ASSERT_EQ(other->options.size(), naive.options.size());
      for (size_t k = 0; k < naive.options.size(); ++k) {
        const core::Option& a = naive.options[k];
        const core::Option& b = other->options[k];
        EXPECT_EQ(a.vehicle, b.vehicle);
        EXPECT_EQ(a.pickup_distance, b.pickup_distance);
        EXPECT_EQ(a.price, b.price);  // byte-identical quotes
        EXPECT_EQ(a.new_total_distance, b.new_total_distance);
      }
    }
    compared_options += static_cast<int>(naive.options.size());
  }
  EXPECT_GT(compared_options, 40);  // the check saw real option sets
}

// --- Quote-path decay (service quote endpoint) -----------------------------

// Regression: PTRider::QuoteRequest must decay the pricing clock to
// `now` BEFORE pricing, exactly as SubmitRequest does. If it priced
// first, a quote issued long after a demand burst would still carry the
// burst's stale surge — and would disagree with an immediately repeated
// identical quote (which would then see the decayed state).
TEST(QuotePathTest, QuoteRequestDecaysStaleSurge) {
  roadnet::CityGridOptions gopts;
  gopts.rows = 10;
  gopts.cols = 10;
  gopts.seed = 23;
  auto graph = roadnet::MakeCityGrid(gopts);
  ASSERT_TRUE(graph.ok());

  core::Config cfg;
  cfg.pricing_policy = core::PricingPolicyKind::kSurge;
  cfg.max_planned_pickup_s = 600.0;
  // Surge engages at the test's modest burst rate.
  cfg.surge_baseline_rate_per_min = 0.5;
  cfg.surge_gain_per_rate = 0.2;
  auto sys = core::PTRider::Create(*graph, cfg);
  ASSERT_TRUE(sys.ok());
  core::PTRider& pt = **sys;
  ASSERT_TRUE(pt.InitFleetUniform(25, 3).ok());

  // A demand burst at t ~ 0 drives the multiplier above 1.
  util::Rng rng(41);
  auto rv = [&]() {
    return static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(graph->NumVertices()) - 1));
  };
  for (int i = 0; i < 30; ++i) {
    vehicle::Request r;
    r.id = 100 + i;
    r.start = rv();
    do {
      r.destination = rv();
    } while (r.destination == r.start);
    r.num_riders = 1;
    r.max_wait_s = cfg.default_max_wait_s;
    r.service_sigma = cfg.default_service_sigma;
    ASSERT_TRUE(pt.SubmitRequest(r, static_cast<double>(i)).ok());
  }
  const auto& surge = dynamic_cast<const SurgePolicy&>(pt.pricing_policy());
  ASSERT_GT(surge.multiplier(), 1.0);

  // Quote well past the surge window: the whole burst has aged out.
  const double late = 30.0 + cfg.surge_window_s + 60.0;
  vehicle::Request probe;
  probe.start = 0;
  probe.destination =
      static_cast<roadnet::VertexId>(graph->NumVertices() - 1);
  probe.num_riders = 1;
  probe.max_wait_s = cfg.default_max_wait_s;
  probe.service_sigma = cfg.default_service_sigma;
  auto first = pt.QuoteRequest(probe, late);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The quote path decayed the rolling window before pricing.
  EXPECT_DOUBLE_EQ(surge.multiplier(), 1.0);

  // An identical repeat sees the same (fully decayed) state:
  // byte-identical quotes, the Decay(t);Record(t) == Record(t) family of
  // invariants applied to the quote-only path.
  auto second = pt.QuoteRequest(probe, late);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->options.size(), second->options.size());
  for (size_t i = 0; i < first->options.size(); ++i) {
    EXPECT_EQ(first->options[i].price, second->options[i].price);
    EXPECT_EQ(first->options[i].vehicle, second->options[i].vehicle);
  }
  // Quote-only: no demand recorded, the multiplier stays at rest.
  EXPECT_DOUBLE_EQ(surge.multiplier(), 1.0);
}

TEST(MatcherEquivalenceTest, PaperPolicy) {
  CheckMatcherEquivalence(core::PricingPolicyKind::kPaper, 5);
}

TEST(MatcherEquivalenceTest, SurgePolicy) {
  CheckMatcherEquivalence(core::PricingPolicyKind::kSurge, 6);
}

TEST(MatcherEquivalenceTest, SharedDiscountPolicy) {
  CheckMatcherEquivalence(core::PricingPolicyKind::kSharedDiscount, 7);
}

}  // namespace
}  // namespace ptrider::pricing
