#include "core/ptrider.h"

#include <gtest/gtest.h>

#include "roadnet/paper_example.h"

namespace ptrider::core {
namespace {

using roadnet::MakePaperExampleNetwork;
using roadnet::PaperExampleNetwork;

Config UnitConfig() {
  Config cfg;
  cfg.speed_mps = 1.0;
  cfg.vehicle_capacity = 4;
  cfg.default_max_wait_s = 5.0;
  cfg.default_service_sigma = 0.2;
  cfg.price_distance_unit_m = 1.0;
  cfg.max_planned_pickup_s = 1e6;
  return cfg;
}

class PTRiderFacadeTest : public ::testing::Test {
 protected:
  PTRiderFacadeTest() : ex_(MakePaperExampleNetwork()) {
    roadnet::GridIndexOptions grid;
    grid.cells_x = 3;
    grid.cells_y = 3;
    auto sys = PTRider::Create(ex_.graph, UnitConfig(), grid);
    EXPECT_TRUE(sys.ok());
    sys_ = std::move(sys).value();
  }

  vehicle::Request MakeRequest(vehicle::RequestId id, int s, int d,
                               int n = 2) {
    vehicle::Request r;
    r.id = id;
    r.start = ex_.v(s);
    r.destination = ex_.v(d);
    r.num_riders = n;
    r.max_wait_s = 5.0;
    r.service_sigma = 0.2;
    return r;
  }

  PaperExampleNetwork ex_;
  std::unique_ptr<PTRider> sys_;
};

TEST_F(PTRiderFacadeTest, CreateRejectsBadConfig) {
  Config bad = UnitConfig();
  bad.vehicle_capacity = 0;
  EXPECT_FALSE(PTRider::Create(ex_.graph, bad).ok());
}

TEST_F(PTRiderFacadeTest, AddVehicleValidatesLocation) {
  EXPECT_FALSE(sys_->AddVehicle(-1).ok());
  EXPECT_FALSE(sys_->AddVehicle(99).ok());
  auto id = sys_->AddVehicle(ex_.v(3));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(sys_->fleet().size(), 1u);
  EXPECT_EQ(sys_->fleet().at(*id).capacity(), 4);
}

TEST_F(PTRiderFacadeTest, InitFleetUniformRegistersAll) {
  ASSERT_TRUE(sys_->InitFleetUniform(10, 5).ok());
  EXPECT_EQ(sys_->fleet().size(), 10u);
  EXPECT_EQ(sys_->vehicle_index().size(), 10u);
}

TEST_F(PTRiderFacadeTest, ChooseOptionRejectsUnknownVehicle) {
  Option o;
  o.vehicle = 42;
  EXPECT_FALSE(
      sys_->ChooseOption(MakeRequest(1, 12, 17), o, 0.0).ok());
}

TEST_F(PTRiderFacadeTest, DuplicateRequestIdRejected) {
  ASSERT_TRUE(sys_->AddVehicle(ex_.v(13)).ok());
  const vehicle::Request r = MakeRequest(7, 12, 17);
  auto m = sys_->SubmitRequest(r, 0.0);
  ASSERT_TRUE(m.ok());
  ASSERT_FALSE(m->options.empty());
  ASSERT_TRUE(sys_->ChooseOption(r, m->options.front(), 0.0).ok());
  EXPECT_EQ(sys_->SubmitRequest(r, 0.0).status().code(),
            util::StatusCode::kAlreadyExists);
}

TEST_F(PTRiderFacadeTest, AssignmentTracking) {
  auto c = sys_->AddVehicle(ex_.v(13));
  ASSERT_TRUE(c.ok());
  const vehicle::Request r = MakeRequest(3, 12, 17);
  EXPECT_EQ(sys_->AssignedVehicle(3), vehicle::kInvalidVehicle);
  auto m = sys_->SubmitRequest(r, 0.0);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(sys_->ChooseOption(r, m->options.front(), 0.0).ok());
  EXPECT_EQ(sys_->AssignedVehicle(3), *c);
}

TEST_F(PTRiderFacadeTest, FullServiceLifecycleEmitsEvents) {
  auto c = sys_->AddVehicle(ex_.v(13));
  ASSERT_TRUE(c.ok());
  const vehicle::Request r = MakeRequest(5, 12, 17);
  auto m = sys_->SubmitRequest(r, 0.0);
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->options.size(), 1u);
  ASSERT_TRUE(sys_->ChooseOption(r, m->options.front(), 0.0).ok());

  // Drive v13 -> v12 (8 units), arrive late by 2 (within w = 5).
  auto path = sys_->oracle().ShortestPath(ex_.v(13), ex_.v(12));
  ASSERT_TRUE(path.ok());
  double now = 0.0;
  for (size_t i = 1; i < path->size(); ++i) {
    const double leg =
        ex_.graph.EdgeWeight((*path)[i - 1], (*path)[i]);
    now += leg;
    ASSERT_TRUE(sys_->UpdateVehicleLocation(
                        *c, (*path)[i], leg, now + 2.0,
                        sys_->fleet().at(*c).tree().BestBranch().stops)
                    .ok());
  }
  auto pickup = sys_->VehicleArrivedAtStop(*c, now + 2.0);
  ASSERT_TRUE(pickup.ok());
  EXPECT_EQ(pickup->stop.type, vehicle::StopType::kPickup);
  EXPECT_NEAR(pickup->waiting_s, 2.0, 1e-9);
  EXPECT_EQ(pickup->num_riders, 2);

  // Drive v12 -> v16 -> v17 (7 units): solo dropoff.
  auto path2 = sys_->oracle().ShortestPath(ex_.v(12), ex_.v(17));
  ASSERT_TRUE(path2.ok());
  for (size_t i = 1; i < path2->size(); ++i) {
    const double leg =
        ex_.graph.EdgeWeight((*path2)[i - 1], (*path2)[i]);
    now += leg;
    ASSERT_TRUE(sys_->UpdateVehicleLocation(
                        *c, (*path2)[i], leg, now + 2.0,
                        sys_->fleet().at(*c).tree().BestBranch().stops)
                    .ok());
  }
  auto dropoff = sys_->VehicleArrivedAtStop(*c, now + 2.0);
  ASSERT_TRUE(dropoff.ok());
  EXPECT_EQ(dropoff->stop.type, vehicle::StopType::kDropoff);
  EXPECT_FALSE(dropoff->shared);
  EXPECT_DOUBLE_EQ(dropoff->price, m->options.front().price);
  EXPECT_NEAR(dropoff->trip_distance_m, 7.0, 1e-9);
  EXPECT_NEAR(dropoff->direct_distance_m, 7.0, 1e-9);
  EXPECT_NEAR(dropoff->allowed_trip_distance_m, 8.4, 1e-9);

  // All served: vehicle empty again, assignment cleared, stats counted.
  EXPECT_TRUE(sys_->fleet().at(*c).IsEmpty());
  EXPECT_EQ(sys_->AssignedVehicle(5), vehicle::kInvalidVehicle);
  EXPECT_EQ(sys_->fleet().at(*c).completed_requests(), 1);
  EXPECT_DOUBLE_EQ(sys_->fleet().at(*c).total_distance_m(), 15.0);
  EXPECT_DOUBLE_EQ(sys_->fleet().at(*c).occupied_distance_m(), 7.0);
  EXPECT_DOUBLE_EQ(sys_->fleet().at(*c).shared_distance_m(), 0.0);
}

TEST_F(PTRiderFacadeTest, ArrivalWithoutScheduleFails) {
  auto c = sys_->AddVehicle(ex_.v(4));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(sys_->VehicleArrivedAtStop(*c, 0.0).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(PTRiderFacadeTest, UpdateLocationValidatesArguments) {
  auto c = sys_->AddVehicle(ex_.v(4));
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(sys_->UpdateVehicleLocation(99, ex_.v(5), 1.0, 0.0, {}).ok());
  EXPECT_FALSE(sys_->UpdateVehicleLocation(*c, 99, 1.0, 0.0, {}).ok());
  EXPECT_TRUE(sys_->UpdateVehicleLocation(*c, ex_.v(5), 2.0, 2.0, {}).ok());
  EXPECT_EQ(sys_->fleet().at(*c).location(), ex_.v(5));
}

TEST_F(PTRiderFacadeTest, MatcherSwitching) {
  sys_->set_matcher(MatcherAlgorithm::kNaive);
  EXPECT_STREQ(sys_->matcher().name(), "naive");
  sys_->set_matcher(MatcherAlgorithm::kSingleSide);
  EXPECT_STREQ(sys_->matcher().name(), "single-side");
  sys_->set_matcher(MatcherAlgorithm::kDualSide);
  EXPECT_STREQ(sys_->matcher().name(), "dual-side");
}

TEST_F(PTRiderFacadeTest, SharedRideMarksBothRequests) {
  // c1 at v1 serving R1 then R2 inserted (the worked example), driven to
  // completion: both dropoffs report shared = true.
  auto c1 = sys_->AddVehicle(ex_.v(1));
  ASSERT_TRUE(c1.ok());
  const vehicle::Request r1 = MakeRequest(1, 2, 16);
  auto m1 = sys_->SubmitRequest(r1, 0.0);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(sys_->ChooseOption(r1, m1->options.front(), 0.0).ok());
  const vehicle::Request r2 = MakeRequest(2, 12, 17);
  auto m2 = sys_->SubmitRequest(r2, 0.0);
  ASSERT_TRUE(m2.ok());
  const Option* cheap = nullptr;
  for (const Option& o : m2->options) {
    if (cheap == nullptr || o.price < cheap->price) cheap = &o;
  }
  ASSERT_NE(cheap, nullptr);
  ASSERT_TRUE(sys_->ChooseOption(r2, *cheap, 0.0).ok());

  double now = 0.0;
  int shared_dropoffs = 0;
  while (!sys_->fleet().at(*c1).tree().empty()) {
    const vehicle::Vehicle& v = sys_->fleet().at(*c1);
    const vehicle::Stop next = v.tree().BestBranch().stops.front();
    auto path = sys_->oracle().ShortestPath(v.location(), next.location);
    ASSERT_TRUE(path.ok());
    for (size_t i = 1; i < path->size(); ++i) {
      const double leg =
          ex_.graph.EdgeWeight((*path)[i - 1], (*path)[i]);
      now += leg;
      ASSERT_TRUE(sys_->UpdateVehicleLocation(
                          *c1, (*path)[i], leg, now,
                          v.tree().BestBranch().stops)
                      .ok());
    }
    auto event = sys_->VehicleArrivedAtStop(*c1, now);
    ASSERT_TRUE(event.ok());
    if (event->stop.type == vehicle::StopType::kDropoff &&
        event->shared) {
      ++shared_dropoffs;
    }
  }
  EXPECT_EQ(shared_dropoffs, 2);
}

}  // namespace
}  // namespace ptrider::core
