#include "dispatch/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace ptrider::dispatch {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count](size_t) { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  pool.ParallelFor(200, [&](size_t, size_t worker) {
    // Caller participates as worker id num_workers().
    if (worker > pool.num_workers()) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i, size_t) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  size_t sum = 0;  // no synchronization needed: caller-only execution
  pool.ParallelFor(10, [&](size_t i, size_t worker) {
    EXPECT_EQ(worker, 0u);
    sum += i;
  });
  EXPECT_EQ(sum, 45u);
  // Submit has no worker to hand to: it runs synchronously, no hang.
  bool ran = false;
  pool.Submit([&ran](size_t worker) {
    EXPECT_EQ(worker, 0u);
    ran = true;
  });
  pool.Wait();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, ReusableAcrossRounds) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(20, [&](size_t, size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 20);
  }
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  pool.ParallelFor(0, [](size_t, size_t) { FAIL(); });
}

TEST(ThreadPoolTest, PerWorkerStateNeedsNoLocking) {
  ThreadPool pool(3);
  // One slot per worker + one for the caller; concurrent tasks write
  // only their own slot. TSan (CI) proves the claim.
  std::vector<uint64_t> per_worker(pool.num_workers() + 1, 0);
  pool.ParallelFor(500, [&](size_t, size_t worker) {
    ++per_worker[worker];
  });
  uint64_t total = 0;
  for (const uint64_t c : per_worker) total += c;
  EXPECT_EQ(total, 500u);
}

}  // namespace
}  // namespace ptrider::dispatch
