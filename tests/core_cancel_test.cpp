// Rider cancellation: an assigned, not-yet-picked-up request can be
// withdrawn; the vehicle's schedules shrink (never break), capacity is
// released, and the vehicle may become empty again in the index.

#include <gtest/gtest.h>

#include "core/distance_providers.h"
#include "core/ptrider.h"
#include "roadnet/paper_example.h"

namespace ptrider::core {
namespace {

using roadnet::MakePaperExampleNetwork;
using roadnet::PaperExampleNetwork;

class CancelTest : public ::testing::Test {
 protected:
  CancelTest() : ex_(MakePaperExampleNetwork()) {
    Config cfg;
    cfg.speed_mps = 1.0;
    cfg.vehicle_capacity = 4;
    cfg.default_max_wait_s = 5.0;
    cfg.default_service_sigma = 0.2;
    cfg.price_distance_unit_m = 1.0;
    cfg.max_planned_pickup_s = 1e6;
    roadnet::GridIndexOptions grid;
    grid.cells_x = 3;
    grid.cells_y = 3;
    auto sys = PTRider::Create(ex_.graph, cfg, grid);
    EXPECT_TRUE(sys.ok());
    sys_ = std::move(sys).value();
  }

  vehicle::Request MakeRequest(vehicle::RequestId id, int s, int d) {
    vehicle::Request r;
    r.id = id;
    r.start = ex_.v(s);
    r.destination = ex_.v(d);
    r.num_riders = 2;
    r.max_wait_s = 5.0;
    r.service_sigma = 0.2;
    return r;
  }

  void Assign(const vehicle::Request& r) {
    auto m = sys_->SubmitRequest(r, 0.0);
    ASSERT_TRUE(m.ok());
    ASSERT_FALSE(m->options.empty());
    ASSERT_TRUE(sys_->ChooseOption(r, m->options.front(), 0.0).ok());
  }

  PaperExampleNetwork ex_;
  std::unique_ptr<PTRider> sys_;
};

TEST_F(CancelTest, UnknownRequestFails) {
  EXPECT_EQ(sys_->CancelRequest(123).code(), util::StatusCode::kNotFound);
}

TEST_F(CancelTest, CancelReturnsVehicleToEmpty) {
  auto c = sys_->AddVehicle(ex_.v(13));
  ASSERT_TRUE(c.ok());
  Assign(MakeRequest(1, 12, 17));
  ASSERT_FALSE(sys_->fleet().at(*c).IsEmpty());
  ASSERT_TRUE(sys_->CancelRequest(1).ok());
  EXPECT_TRUE(sys_->fleet().at(*c).IsEmpty());
  EXPECT_EQ(sys_->AssignedVehicle(1), vehicle::kInvalidVehicle);
  // Back in the empty-vehicle list for matching.
  const auto cell = sys_->grid().CellOfVertex(ex_.v(13));
  const auto& empties = sys_->vehicle_index().EmptyVehicles(cell);
  EXPECT_NE(std::find(empties.begin(), empties.end(), *c), empties.end());
  // The request id can be reused after cancellation.
  Assign(MakeRequest(1, 12, 17));
}

TEST_F(CancelTest, CancelOneOfTwoKeepsOtherSchedulesValid) {
  auto c = sys_->AddVehicle(ex_.v(1));
  ASSERT_TRUE(c.ok());
  Assign(MakeRequest(1, 2, 16));
  const double total_before = sys_->fleet().at(*c).tree().BestTotalDistance();
  Assign(MakeRequest(2, 12, 17));
  ASSERT_EQ(sys_->fleet().at(*c).tree().NumPendingRequests(), 2u);
  ASSERT_TRUE(sys_->CancelRequest(2).ok());
  const vehicle::KineticTree& tree = sys_->fleet().at(*c).tree();
  EXPECT_EQ(tree.NumPendingRequests(), 1u);
  // Schedule shrank back to serving R1 alone.
  EXPECT_DOUBLE_EQ(tree.BestTotalDistance(), total_before);
  roadnet::DistanceOracle oracle(ex_.graph);
  ExactDistanceProvider dist(oracle);
  for (const vehicle::Branch& b : tree.branches()) {
    EXPECT_TRUE(tree.ValidateSequence(b.stops, {0.0, 1.0}, dist, nullptr,
                                      0.0, nullptr, nullptr));
    for (const vehicle::Stop& s : b.stops) EXPECT_EQ(s.request, 1);
  }
}

TEST_F(CancelTest, CannotCancelOnboardRider) {
  auto c = sys_->AddVehicle(ex_.v(13));
  ASSERT_TRUE(c.ok());
  Assign(MakeRequest(3, 12, 17));
  // Drive to the pickup and board.
  auto path = sys_->oracle().ShortestPath(ex_.v(13), ex_.v(12));
  ASSERT_TRUE(path.ok());
  double now = 0.0;
  for (size_t i = 1; i < path->size(); ++i) {
    const double leg = ex_.graph.EdgeWeight((*path)[i - 1], (*path)[i]);
    now += leg;
    ASSERT_TRUE(sys_->UpdateVehicleLocation(
                        *c, (*path)[i], leg, now,
                        sys_->fleet().at(*c).tree().BestBranch().stops)
                    .ok());
  }
  ASSERT_TRUE(sys_->VehicleArrivedAtStop(*c, now).ok());
  EXPECT_EQ(sys_->CancelRequest(3).code(),
            util::StatusCode::kFailedPrecondition);
  // Still assigned; the ride continues.
  EXPECT_EQ(sys_->AssignedVehicle(3), *c);
}

TEST_F(CancelTest, CancellationRestoresCapacityForOthers) {
  // Capacity 4: two 2-rider groups fill the taxi; a third 2-rider group
  // overlapping both trips is rejected until one cancels.
  auto c = sys_->AddVehicle(ex_.v(1));
  ASSERT_TRUE(c.ok());
  Assign(MakeRequest(1, 2, 16));
  Assign(MakeRequest(2, 12, 17));
  // R3 wants the same corridor mid-trip: no capacity while both ride.
  vehicle::Request r3 = MakeRequest(3, 12, 16);
  r3.max_wait_s = 100.0;
  r3.service_sigma = 1.0;
  auto m3 = sys_->SubmitRequest(r3, 0.0);
  ASSERT_TRUE(m3.ok());
  const size_t options_full = m3->options.size();
  ASSERT_TRUE(sys_->CancelRequest(2).ok());
  auto m3_after = sys_->SubmitRequest(r3, 0.0);
  ASSERT_TRUE(m3_after.ok());
  EXPECT_GE(m3_after->options.size(), options_full);
  EXPECT_FALSE(m3_after->options.empty())
      << "freed capacity must admit the waiting group";
}

}  // namespace
}  // namespace ptrider::core
