#include <gtest/gtest.h>

#include "roadnet/astar.h"
#include "roadnet/bidirectional_dijkstra.h"
#include "roadnet/dijkstra.h"
#include "roadnet/distance_oracle.h"
#include "roadnet/graph_generator.h"
#include "roadnet/paper_example.h"
#include "util/random.h"

namespace ptrider::roadnet {
namespace {

RoadNetwork SmallCity() {
  CityGridOptions opts;
  opts.rows = 12;
  opts.cols = 12;
  opts.seed = 99;
  auto g = MakeCityGrid(opts);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(DijkstraTest, KnownDistances) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  DijkstraEngine engine(ex.graph);
  EXPECT_DOUBLE_EQ(engine.Distance(ex.v(1), ex.v(1)), 0.0);
  EXPECT_DOUBLE_EQ(engine.Distance(ex.v(1), ex.v(5)), 2.0);
  EXPECT_DOUBLE_EQ(engine.Distance(ex.v(5), ex.v(1)), 2.0);
}

TEST(DijkstraTest, InvalidVerticesAreUnreachable) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  DijkstraEngine engine(ex.graph);
  EXPECT_EQ(engine.Distance(ex.v(1), 99), kInfWeight);
  EXPECT_EQ(engine.Distance(-3, ex.v(1)), kInfWeight);
}

TEST(DijkstraTest, UnreachableAcrossComponents) {
  GraphBuilder b;
  const VertexId a = b.AddVertex({0, 0});
  const VertexId c = b.AddVertex({1, 0});
  const VertexId d = b.AddVertex({5, 5});
  const VertexId e = b.AddVertex({6, 5});
  ASSERT_TRUE(b.AddUndirectedEdge(a, c, 1.0).ok());
  ASSERT_TRUE(b.AddUndirectedEdge(d, e, 1.0).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  DijkstraEngine engine(*g);
  EXPECT_EQ(engine.Distance(a, d), kInfWeight);
  EXPECT_DOUBLE_EQ(engine.Distance(a, c), 1.0);
}

TEST(DijkstraTest, PathEndpointsAndLength) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  DijkstraEngine engine(ex.graph);
  const VertexId targets[] = {ex.v(17)};
  DijkstraEngine::RunOptions opts;
  opts.targets = targets;
  engine.RunFrom(ex.v(1), opts);
  const std::vector<VertexId> path = engine.PathTo(ex.v(17));
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), ex.v(1));
  EXPECT_EQ(path.back(), ex.v(17));
  // Path length equals reported distance.
  Weight len = 0.0;
  for (size_t i = 1; i < path.size(); ++i) {
    len += ex.graph.EdgeWeight(path[i - 1], path[i]);
  }
  EXPECT_DOUBLE_EQ(len, engine.DistanceTo(ex.v(17)));
}

TEST(DijkstraTest, RadiusBoundsSearch) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  DijkstraEngine engine(ex.graph);
  DijkstraEngine::RunOptions opts;
  opts.radius = 4.0;
  engine.RunFrom(ex.v(1), opts);
  EXPECT_TRUE(engine.Reached(ex.v(5)));   // at distance 2
  EXPECT_FALSE(engine.Reached(ex.v(17)));  // far beyond radius
}

TEST(DijkstraTest, FilterRestrictsSearch) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  DijkstraEngine engine(ex.graph);
  // Restrict to vertices v1..v6 (ids 0..5): v7+ unreachable.
  DijkstraEngine::RunOptions opts;
  opts.filter = [](VertexId v) { return v < 6; };
  engine.RunFrom(ex.v(1), opts);
  EXPECT_TRUE(engine.Reached(ex.v(6)));
  EXPECT_FALSE(engine.Reached(ex.v(7)));
}

TEST(DijkstraTest, MultiSourceSettlesNearestSource) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  DijkstraEngine engine(ex.graph);
  const std::pair<VertexId, Weight> sources[] = {{ex.v(1), 0.0},
                                                 {ex.v(17), 0.0}};
  engine.Run(sources);
  EXPECT_EQ(engine.SourceOf(ex.v(5)), ex.v(1));
  EXPECT_EQ(engine.SourceOf(ex.v(16)), ex.v(17));
  EXPECT_DOUBLE_EQ(engine.DistanceTo(ex.v(16)), 3.0);
}

TEST(DijkstraTest, MultiSourceInitialDistances) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  DijkstraEngine engine(ex.graph);
  // Bias v1 with a head start of 10: v17 side wins more vertices.
  const std::pair<VertexId, Weight> sources[] = {{ex.v(1), 10.0},
                                                 {ex.v(17), 0.0}};
  engine.Run(sources);
  EXPECT_EQ(engine.SourceOf(ex.v(5)), ex.v(1));
  EXPECT_DOUBLE_EQ(engine.DistanceTo(ex.v(5)), 12.0);
}

TEST(ShortestPathAgreementTest, AllEnginesAgreeOnRandomPairs) {
  const RoadNetwork g = SmallCity();
  DijkstraEngine dij(g);
  BidirectionalDijkstra bidi(g);
  AStarEngine astar(g);
  util::Rng rng(1234);
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
    const auto v = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
    const Weight d0 = dij.Distance(u, v);
    EXPECT_NEAR(bidi.Distance(u, v), d0, 1e-9 * (1.0 + d0))
        << "bidirectional mismatch " << u << "->" << v;
    EXPECT_NEAR(astar.Distance(u, v), d0, 1e-9 * (1.0 + d0))
        << "astar mismatch " << u << "->" << v;
  }
}

TEST(ShortestPathAgreementTest, SymmetricDistances) {
  const RoadNetwork g = SmallCity();
  DijkstraEngine dij(g);
  util::Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    const auto u = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
    const auto v = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
    EXPECT_DOUBLE_EQ(dij.Distance(u, v), dij.Distance(v, u));
  }
}

TEST(AStarTest, LastPathMatchesDistance) {
  const RoadNetwork g = SmallCity();
  AStarEngine astar(g);
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto u = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
    const auto v = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
    const Weight d = astar.Distance(u, v);
    if (d == kInfWeight) continue;
    const std::vector<VertexId> path = astar.LastPath();
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), u);
    EXPECT_EQ(path.back(), v);
    Weight len = 0.0;
    for (size_t k = 1; k < path.size(); ++k) {
      len += g.EdgeWeight(path[k - 1], path[k]);
    }
    EXPECT_NEAR(len, d, 1e-9 * (1.0 + d));
  }
}

TEST(DistanceOracleTest, CachesSymmetricPairs) {
  const RoadNetwork g = SmallCity();
  DistanceOracle oracle(g);
  const Weight d1 = oracle.Distance(3, 40);
  const Weight d2 = oracle.Distance(40, 3);  // symmetric: cache hit
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_EQ(oracle.queries(), 2u);
  EXPECT_EQ(oracle.cache_hits(), 1u);
  EXPECT_EQ(oracle.computed(), 1u);
}

TEST(DistanceOracleTest, TrivialAndInvalidQueries) {
  const RoadNetwork g = SmallCity();
  DistanceOracle oracle(g);
  EXPECT_DOUBLE_EQ(oracle.Distance(5, 5), 0.0);
  EXPECT_EQ(oracle.Distance(-1, 5), kInfWeight);
  EXPECT_EQ(oracle.computed(), 0u);
}

TEST(DistanceOracleTest, CacheEviction) {
  const RoadNetwork g = SmallCity();
  DistanceOracleOptions opts;
  opts.cache_capacity = 4;
  DistanceOracle oracle(g, opts);
  for (VertexId v = 1; v <= 10; ++v) oracle.Distance(0, v);
  // All still correct after eviction churn.
  DijkstraEngine dij(g);
  for (VertexId v = 1; v <= 10; ++v) {
    EXPECT_DOUBLE_EQ(oracle.Distance(0, v), dij.Distance(0, v));
  }
}

TEST(DistanceOracleTest, CacheEvictsLeastRecentlyUsed) {
  // Pin the flat cache's LRU semantics: a hit refreshes recency, an
  // insert at capacity evicts the stalest pair. Observed through
  // computed(): a re-query of a cached pair leaves it unchanged.
  const RoadNetwork g = SmallCity();
  DistanceOracleOptions opts;
  opts.cache_capacity = 3;
  DistanceOracle oracle(g, opts);
  oracle.Distance(0, 1);  // A
  oracle.Distance(0, 2);  // B
  oracle.Distance(0, 3);  // C    recency: C B A
  EXPECT_EQ(oracle.computed(), 3u);

  oracle.Distance(0, 1);  // hit A  recency: A C B
  EXPECT_EQ(oracle.cache_hits(), 1u);
  EXPECT_EQ(oracle.computed(), 3u);

  oracle.Distance(0, 4);  // D evicts B (LRU), not A: recency D A C
  EXPECT_EQ(oracle.computed(), 4u);

  oracle.Distance(0, 1);  // A survived its refresh
  oracle.Distance(0, 3);  // C survived
  EXPECT_EQ(oracle.cache_hits(), 3u);
  EXPECT_EQ(oracle.computed(), 4u);

  oracle.Distance(0, 2);  // B was evicted: recomputes (evicting D)
  EXPECT_EQ(oracle.cache_hits(), 3u);
  EXPECT_EQ(oracle.computed(), 5u);

  oracle.Distance(0, 4);  // and D is gone in turn
  EXPECT_EQ(oracle.computed(), 6u);
}

TEST(DistanceOracleTest, CacheChurnStaysConsistent) {
  // Heavy insert/hit/evict mix over a tiny capacity: the open-addressing
  // table's backward-shift deletions must never lose or corrupt entries.
  const RoadNetwork g = SmallCity();
  DistanceOracleOptions opts;
  opts.cache_capacity = 16;
  DistanceOracle oracle(g, opts);
  DijkstraEngine ref(g);
  util::Rng rng(2024);
  for (int i = 0; i < 3000; ++i) {
    const auto u = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
    const auto v = static_cast<VertexId>(rng.UniformInt(0, 12));
    EXPECT_DOUBLE_EQ(oracle.Distance(u, v), ref.Distance(u, v));
  }
  EXPECT_EQ(oracle.queries(), 3000u);
  EXPECT_GT(oracle.cache_hits(), 0u);
}

TEST(DistanceOracleTest, AllAlgorithmsAgree) {
  const RoadNetwork g = SmallCity();
  DistanceOracleOptions base;
  base.cache_capacity = 0;
  util::Rng rng(42);
  for (const SpAlgorithm algo :
       {SpAlgorithm::kDijkstra, SpAlgorithm::kBidirectional,
        SpAlgorithm::kAStar, SpAlgorithm::kContractionHierarchy}) {
    DistanceOracleOptions opts = base;
    opts.algorithm = algo;
    DistanceOracle oracle(g, opts);
    DijkstraEngine ref(g);
    for (int i = 0; i < 30; ++i) {
      const auto u = static_cast<VertexId>(
          rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
      const auto v = static_cast<VertexId>(
          rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
      EXPECT_DOUBLE_EQ(oracle.Distance(u, v), ref.Distance(u, v))
          << SpAlgorithmName(algo);
    }
  }
}

TEST(DistanceOracleTest, ShortestPathCountsAsQuery) {
  // Path queries used to run a hidden A* whose heap pops surfaced in
  // heap_pops() while queries()/computed() never moved — the per-search
  // effort ratios were skewed. They now share Distance's accounting.
  const RoadNetwork g = SmallCity();
  DistanceOracleOptions opts;
  opts.algorithm = SpAlgorithm::kBidirectional;  // path engine is hidden
  DistanceOracle oracle(g, opts);

  auto path = oracle.ShortestPath(0, 40);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(oracle.queries(), 1u);
  EXPECT_EQ(oracle.computed(), 1u);
  EXPECT_GT(oracle.heap_pops(), 0u);  // the lazily built A* is counted

  // Trivial path: a query, but no search — exactly like Distance(v, v).
  ASSERT_TRUE(oracle.ShortestPath(5, 5).ok());
  EXPECT_EQ(oracle.queries(), 2u);
  EXPECT_EQ(oracle.computed(), 1u);

  // Invalid endpoints: counted as a query, like Distance's screening.
  EXPECT_FALSE(oracle.ShortestPath(-1, 2).ok());
  EXPECT_EQ(oracle.queries(), 3u);
  EXPECT_EQ(oracle.computed(), 1u);

  // Paths are not cached: the same pair searches again.
  ASSERT_TRUE(oracle.ShortestPath(0, 40).ok());
  EXPECT_EQ(oracle.queries(), 4u);
  EXPECT_EQ(oracle.computed(), 2u);
  EXPECT_EQ(oracle.cache_hits(), 0u);

  // And ResetStats clears the path engine's pops too.
  oracle.ResetStats();
  EXPECT_EQ(oracle.heap_pops(), 0u);
}

TEST(DistanceOracleTest, ShortestPathExtraction) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  DistanceOracle oracle(ex.graph);
  auto path = oracle.ShortestPath(ex.v(2), ex.v(16));
  ASSERT_TRUE(path.ok());
  // v2 -> v7 -> v12 -> v16 is the unique shortest path (length 12).
  const std::vector<VertexId> expected = {ex.v(2), ex.v(7), ex.v(12),
                                          ex.v(16)};
  EXPECT_EQ(path.value(), expected);

  auto self = oracle.ShortestPath(ex.v(3), ex.v(3));
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->size(), 1u);

  EXPECT_FALSE(oracle.ShortestPath(-1, 2).ok());
}

}  // namespace
}  // namespace ptrider::roadnet
