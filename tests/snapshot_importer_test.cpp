// DIMACS 9th-challenge importer (src/snapshot/importer.*): .gr/.co
// parsing, 1-based -> 0-based id translation, self-loop skipping,
// line-numbered rejection of malformed and truncated files, and the
// extension dispatch of LoadAnyGraph.

#include "snapshot/importer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "roadnet/dijkstra.h"
#include "roadnet/graph_io.h"
#include "roadnet/paper_example.h"

namespace ptrider::snapshot {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const char* content) {
  std::ofstream out(path);
  out << content;
}

// A 4-vertex diamond: 1 -> {2, 3} -> 4, plus one self-loop to skip.
constexpr char kDiamondGr[] =
    "c tiny test network\n"
    "p sp 4 7\n"
    "a 1 2 10\n"
    "a 1 3 12\n"
    "a 2 4 5\n"
    "a 3 4 2\n"
    "a 4 1 30\n"
    "a 2 2 99\n"
    "\n"
    "a 1 4 40\n";

constexpr char kDiamondCo[] =
    "c coordinates\n"
    "p aux sp co 4\n"
    "v 1 0.0 0.0\n"
    "v 2 10.0 1.0\n"
    "v 3 10.0 -1.0\n"
    "v 4 20.0 0.0\n";

TEST(DimacsImportTest, LoadsGraphAndCoordinates) {
  const std::string gr = TempPath("diamond.gr");
  const std::string co = TempPath("diamond.co");
  WriteFile(gr, kDiamondGr);
  WriteFile(co, kDiamondCo);

  ImportStats stats;
  auto graph = LoadDimacsGraph(gr, co, &stats);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->NumVertices(), 4u);
  EXPECT_EQ(graph->NumEdges(), 6u);  // 7 arcs minus the self-loop
  EXPECT_EQ(stats.num_vertices, 4u);
  EXPECT_EQ(stats.num_edges, 6u);
  EXPECT_EQ(stats.skipped_self_loops, 1u);
  // 1-based file ids land at 0-based vertices with their coordinates.
  EXPECT_DOUBLE_EQ(graph->Coord(1).x, 10.0);
  EXPECT_DOUBLE_EQ(graph->Coord(1).y, 1.0);
  // Shortest 0 -> 3 goes via vertex 2: 12 + 2 < 10 + 5 < 40.
  roadnet::DijkstraEngine dij(*graph);
  EXPECT_DOUBLE_EQ(dij.Distance(0, 3), 14.0);

  std::remove(gr.c_str());
  std::remove(co.c_str());
}

TEST(DimacsImportTest, MissingCoordinateFileMeansOriginCoords) {
  const std::string gr = TempPath("no_co.gr");
  WriteFile(gr, "p sp 2 1\na 1 2 3.5\n");
  auto graph = LoadDimacsGraph(gr, /*co_path=*/"", nullptr);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->NumVertices(), 2u);
  EXPECT_DOUBLE_EQ(graph->Coord(1).x, 0.0);
  // All-origin coordinates trivially satisfy the geometric lower bound.
  EXPECT_TRUE(graph->GeometricLowerBoundValid());
  std::remove(gr.c_str());
}

TEST(DimacsImportTest, RejectsTruncatedArcList) {
  const std::string gr = TempPath("truncated.gr");
  WriteFile(gr, "p sp 3 5\na 1 2 1\na 2 3 1\n");  // declares 5, has 2
  auto graph = LoadDimacsGraph(gr, "", nullptr);
  ASSERT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("truncated"),
            std::string::npos)
      << graph.status().ToString();
  std::remove(gr.c_str());
}

TEST(DimacsImportTest, RejectsMalformedLinesWithLineNumbers) {
  const std::string gr = TempPath("bad.gr");

  WriteFile(gr, "p sp 3 1\na 1 9 1\n");  // endpoint out of range
  auto out_of_range = LoadDimacsGraph(gr, "", nullptr);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_NE(out_of_range.status().message().find("line 2"),
            std::string::npos)
      << out_of_range.status().ToString();

  WriteFile(gr, "a 1 2 1\n");  // arc before problem line
  EXPECT_FALSE(LoadDimacsGraph(gr, "", nullptr).ok());

  WriteFile(gr, "p sp 2 1\na 1 2\n");  // missing weight
  EXPECT_FALSE(LoadDimacsGraph(gr, "", nullptr).ok());

  WriteFile(gr, "p sp 2 1\na 1 2 -4\n");  // negative weight
  auto negative = LoadDimacsGraph(gr, "", nullptr);
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.status().message().find("line 2"),
            std::string::npos);

  WriteFile(gr, "q sp 2 1\n");  // unknown line kind
  EXPECT_FALSE(LoadDimacsGraph(gr, "", nullptr).ok());

  WriteFile(gr, "p sp 2 1\np sp 2 1\na 1 2 1\n");  // second problem line
  EXPECT_FALSE(LoadDimacsGraph(gr, "", nullptr).ok());

  std::remove(gr.c_str());
}

TEST(DimacsImportTest, RejectsBadCoordinateFiles) {
  const std::string gr = TempPath("co_bad.gr");
  const std::string co = TempPath("co_bad.co");
  WriteFile(gr, "p sp 2 1\na 1 2 1\n");

  WriteFile(co, "p aux sp co 2\nv 1 0 0\nv 1 1 1\n");  // duplicate
  auto dup = LoadDimacsGraph(gr, co, nullptr);
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos);

  WriteFile(co, "p aux sp co 2\nv 1 0 0\n");  // vertex 2 missing
  EXPECT_FALSE(LoadDimacsGraph(gr, co, nullptr).ok());

  WriteFile(co, "p aux sp co 3\nv 1 0 0\nv 2 1 0\nv 3 2 0\n");
  auto mismatch = LoadDimacsGraph(gr, co, nullptr);  // 3 coords, n = 2
  ASSERT_FALSE(mismatch.ok());

  WriteFile(co, "v 1 0 0\n");  // coordinate before problem line
  EXPECT_FALSE(LoadDimacsGraph(gr, co, nullptr).ok());

  std::remove(gr.c_str());
  std::remove(co.c_str());
}

TEST(LoadAnyGraphTest, DispatchesByExtension) {
  // .gr with a sibling .co picks up the coordinates automatically.
  const std::string gr = TempPath("any.gr");
  const std::string co = TempPath("any.co");
  WriteFile(gr, kDiamondGr);
  WriteFile(co, kDiamondCo);
  auto from_gr = LoadAnyGraph(gr, nullptr);
  ASSERT_TRUE(from_gr.ok()) << from_gr.status().ToString();
  EXPECT_DOUBLE_EQ(from_gr->Coord(3).x, 20.0);
  std::remove(co.c_str());

  // Without the sibling, coordinates default to the origin.
  auto no_co = LoadAnyGraph(gr, nullptr);
  ASSERT_TRUE(no_co.ok()) << no_co.status().ToString();
  EXPECT_DOUBLE_EQ(no_co->Coord(3).x, 0.0);
  std::remove(gr.c_str());

  // .csv routes through LoadGraphCsv.
  const roadnet::PaperExampleNetwork ex =
      roadnet::MakePaperExampleNetwork();
  const std::string csv = TempPath("any.csv");
  ASSERT_TRUE(roadnet::SaveGraphCsv(ex.graph, csv).ok());
  ImportStats stats;
  auto from_csv = LoadAnyGraph(csv, &stats);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  EXPECT_EQ(from_csv->NumVertices(), ex.graph.NumVertices());
  EXPECT_EQ(stats.num_vertices, ex.graph.NumVertices());
  std::remove(csv.c_str());

  // Anything else is rejected up front.
  EXPECT_FALSE(LoadAnyGraph("network.osm.pbf", nullptr).ok());
}

}  // namespace
}  // namespace ptrider::snapshot
