#include "roadnet/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "roadnet/dijkstra.h"
#include "roadnet/graph_generator.h"
#include "roadnet/paper_example.h"
#include "util/random.h"

namespace ptrider::roadnet {
namespace {

GridIndex BuildIndex(const RoadNetwork& g, int cells) {
  GridIndexOptions opts;
  opts.cells_x = cells;
  opts.cells_y = cells;
  auto index = GridIndex::Build(g, opts);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

TEST(GridIndexTest, RejectsBadOptions) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  GridIndexOptions opts;
  opts.cells_x = 0;
  EXPECT_FALSE(GridIndex::Build(ex.graph, opts).ok());
}

TEST(GridIndexTest, RejectsAsymmetricNetwork) {
  GraphBuilder b;
  const VertexId a = b.AddVertex({0, 0});
  const VertexId c = b.AddVertex({1, 0});
  ASSERT_TRUE(b.AddEdge(a, c, 1.0).ok());  // one-way street
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(GridIndex::Build(*g).ok());
}

TEST(GridIndexTest, SingleCellDegenerateGrid) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  const GridIndex index = BuildIndex(ex.graph, 1);
  EXPECT_EQ(index.NumCells(), 1);
  // No cell crossings: no border vertices, every v.min infinite.
  for (VertexId v = 0; v < 17; ++v) {
    EXPECT_EQ(index.CellOfVertex(v), 0);
    EXPECT_EQ(index.VertexMinToBorder(v), kInfWeight);
  }
  // Same-cell lower bound falls back to geometry.
  EXPECT_GT(index.LowerBound(ex.v(1), ex.v(17)), 0.0);
}

TEST(GridIndexTest, BorderVerticesHaveCrossingEdges) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  const GridIndex index = BuildIndex(ex.graph, 3);
  size_t borders = 0;
  for (CellId c = 0; c < index.NumCells(); ++c) {
    for (const VertexId b : index.BorderVertices(c)) {
      ++borders;
      EXPECT_EQ(index.CellOfVertex(b), c);
      bool crossing = false;
      for (const Edge& e : ex.graph.OutEdges(b)) {
        if (index.CellOfVertex(e.to) != c) crossing = true;
      }
      // A border vertex has a crossing edge in one direction; for
      // undirected networks the reverse holds too.
      EXPECT_TRUE(crossing) << "v" << b + 1;
    }
  }
  EXPECT_GT(borders, 0u);
  EXPECT_EQ(borders, index.build_stats().border_vertex_count);
}

TEST(GridIndexTest, VertexMinIsExactNearestBorderDistance) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  const GridIndex index = BuildIndex(ex.graph, 3);
  DijkstraEngine dij(ex.graph);
  for (VertexId v = 0; v < 17; ++v) {
    const auto& borders = index.BorderVertices(index.CellOfVertex(v));
    if (borders.empty()) {
      EXPECT_EQ(index.VertexMinToBorder(v), kInfWeight);
      continue;
    }
    Weight best = kInfWeight;
    for (const VertexId b : borders) {
      best = std::min(best, dij.Distance(v, b));
    }
    EXPECT_DOUBLE_EQ(index.VertexMinToBorder(v), best) << "v" << v + 1;
  }
}

TEST(GridIndexTest, CellPairLowerBoundIsMinBorderDistanceWithWitness) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  const GridIndex index = BuildIndex(ex.graph, 3);
  DijkstraEngine dij(ex.graph);
  for (CellId a = 0; a < index.NumCells(); ++a) {
    EXPECT_DOUBLE_EQ(index.CellPairLowerBound(a, a), 0.0);
    for (CellId b = 0; b < index.NumCells(); ++b) {
      if (a == b) continue;
      Weight best = kInfWeight;
      for (const VertexId x : index.BorderVertices(a)) {
        for (const VertexId y : index.BorderVertices(b)) {
          best = std::min(best, dij.Distance(x, y));
        }
      }
      EXPECT_DOUBLE_EQ(index.CellPairLowerBound(a, b), best);
      if (best != kInfWeight) {
        const WitnessPair w = index.CellPairWitness(a, b);
        ASSERT_NE(w.x, kInvalidVertex);
        ASSERT_NE(w.y, kInvalidVertex);
        EXPECT_EQ(index.CellOfVertex(w.x), a);
        EXPECT_EQ(index.CellOfVertex(w.y), b);
        EXPECT_DOUBLE_EQ(dij.Distance(w.x, w.y), best);
      }
    }
  }
}

TEST(GridIndexTest, SortedCellListsAscendingAndComplete) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  const GridIndex index = BuildIndex(ex.graph, 3);
  for (CellId c = 0; c < index.NumCells(); ++c) {
    const auto& list = index.SortedCellList(c);
    for (size_t i = 1; i < list.size(); ++i) {
      EXPECT_LE(list[i - 1].lower_bound, list[i].lower_bound);
    }
    for (const CellNeighbor& cn : list) {
      EXPECT_NE(cn.cell, c);
      EXPECT_FALSE(index.Vertices(cn.cell).empty());
      EXPECT_DOUBLE_EQ(cn.lower_bound, index.CellPairLowerBound(c, cn.cell));
    }
  }
}

// Property: LowerBound admissible, UpperBound sound, on random pairs of a
// generated city with several grid resolutions.
class GridIndexBoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(GridIndexBoundsTest, BoundsBracketTrueDistance) {
  CityGridOptions copts;
  copts.rows = 15;
  copts.cols = 15;
  copts.seed = 31;
  auto g = MakeCityGrid(copts);
  ASSERT_TRUE(g.ok());
  const GridIndex index = BuildIndex(*g, GetParam());
  DijkstraEngine dij(*g);
  util::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const auto u = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g->NumVertices()) - 1));
    const auto v = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g->NumVertices()) - 1));
    const Weight exact = dij.Distance(u, v);
    const Weight lb = index.LowerBound(u, v);
    const Weight ub = index.UpperBound(u, v);
    EXPECT_LE(lb, exact * (1.0 + 1e-12) + 1e-9)
        << "LB not admissible for " << u << "->" << v;
    if (ub != kInfWeight) {
      EXPECT_GE(ub * (1.0 + 1e-12) + 1e-9, exact)
          << "UB below true distance for " << u << "->" << v;
    }
    if (u == v) {
      EXPECT_DOUBLE_EQ(lb, 0.0);
      EXPECT_DOUBLE_EQ(ub, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, GridIndexBoundsTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(GridIndexTest, CellOfPointClampsOutside) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  const GridIndex index = BuildIndex(ex.graph, 3);
  EXPECT_EQ(index.CellOfPoint({-100.0, -100.0}), 0);
  EXPECT_EQ(index.CellOfPoint({1e9, 1e9}), index.NumCells() - 1);
}

TEST(GridIndexTest, CellsOfPathFirstTouchOrder) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  const GridIndex index = BuildIndex(ex.graph, 3);
  DijkstraEngine dij(ex.graph);
  const VertexId targets[] = {ex.v(17)};
  DijkstraEngine::RunOptions opts;
  opts.targets = targets;
  dij.RunFrom(ex.v(1), opts);
  const std::vector<VertexId> path = dij.PathTo(ex.v(17));
  const std::vector<CellId> cells = index.CellsOfPath(path);
  EXPECT_FALSE(cells.empty());
  // First cell is the start's cell; no duplicates.
  EXPECT_EQ(cells.front(), index.CellOfVertex(ex.v(1)));
  std::vector<CellId> sorted = cells;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

// Long paths take the bitmap dedupe; short ones the linear scan. Both
// must agree with the reference scan-the-output semantics: distinct
// cells, first-touch order.
TEST(GridIndexTest, CellsOfPathBitmapMatchesReferenceOnLongPaths) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  const GridIndex index = BuildIndex(ex.graph, 3);
  // A synthetic long walk with plenty of revisits (vertex sequence need
  // not be a real shortest path for cell mapping).
  std::vector<VertexId> path;
  for (int round = 0; round < 12; ++round) {
    for (int label = 1; label <= 17; ++label) {
      path.push_back(ex.v(((label + round) % 17) + 1));
    }
  }
  ASSERT_GT(path.size(), 24u);
  const std::vector<CellId> cells = index.CellsOfPath(path);
  std::vector<CellId> reference;
  for (const VertexId v : path) {
    const CellId c = index.CellOfVertex(v);
    if (std::find(reference.begin(), reference.end(), c) ==
        reference.end()) {
      reference.push_back(c);
    }
  }
  EXPECT_EQ(cells, reference);
}

TEST(GridIndexTest, UpperBoundUnavailableWithoutWitnesses) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  GridIndexOptions opts;
  opts.cells_x = 3;
  opts.cells_y = 3;
  opts.store_witnesses = false;
  auto index = GridIndex::Build(ex.graph, opts);
  ASSERT_TRUE(index.ok());
  bool found_cross_cell = false;
  for (VertexId u = 0; u < 17 && !found_cross_cell; ++u) {
    for (VertexId v = 0; v < 17; ++v) {
      if (index->CellOfVertex(u) != index->CellOfVertex(v)) {
        EXPECT_EQ(index->UpperBound(u, v), kInfWeight);
        found_cross_cell = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_cross_cell);
}

TEST(GridIndexTest, BuildStatsPopulated) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  const GridIndex index = BuildIndex(ex.graph, 3);
  EXPECT_GT(index.build_stats().non_empty_cells, 0u);
  EXPECT_GT(index.build_stats().approx_memory_bytes, 0u);
  EXPECT_GE(index.build_stats().build_seconds, 0.0);
  EXPECT_FALSE(index.DebugString().empty());
}

}  // namespace
}  // namespace ptrider::roadnet
