#include "service/dispatch_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "roadnet/graph_generator.h"
#include "service/admission.h"
#include "sim/workload.h"

namespace ptrider::service {
namespace {

struct ServiceFixture {
  roadnet::RoadNetwork graph;
  std::unique_ptr<core::PTRider> system;
};

ServiceFixture MakeFixture(size_t vehicles, int dispatch_threads,
                           uint64_t seed = 11) {
  ServiceFixture f;
  roadnet::CityGridOptions gopts;
  gopts.rows = 12;
  gopts.cols = 12;
  gopts.seed = seed;
  auto g = roadnet::MakeCityGrid(gopts);
  EXPECT_TRUE(g.ok());
  f.graph = std::move(g).value();

  core::Config cfg;
  cfg.matcher = core::MatcherAlgorithm::kDualSide;
  cfg.dispatch_threads = dispatch_threads;
  cfg.default_max_wait_s = 360.0;
  cfg.max_planned_pickup_s = 600.0;
  auto sys = core::PTRider::Create(f.graph, cfg);
  EXPECT_TRUE(sys.ok());
  f.system = std::move(sys).value();
  EXPECT_TRUE(f.system->InitFleetUniform(vehicles, seed).ok());
  return f;
}

PoissonArrivalOptions ModestLoad() {
  PoissonArrivalOptions a;
  a.rate_per_s = 1.5;
  a.duration_s = 120.0;
  a.seed = 77;
  return a;
}

/// Byte-wise comparable snapshot of everything a virtual-clock run
/// promises to be deterministic (wall-clock fields excluded).
struct Snapshot {
  uint64_t offered, ingested, rejected, shed, dispatched, assigned;
  uint64_t max_depth;
  double q_p50, q_p99, q_p999, a_p50, a_p99, a_p999;
  int64_t sim_assigned, sim_completed, sim_shared;
  double revenue, fleet_m;

  bool operator==(const Snapshot&) const = default;
};

Snapshot Snap(const ServiceReport& r) {
  Snapshot s{};
  s.offered = r.service.offered;
  s.ingested = r.service.ingested;
  s.rejected = r.service.rejected;
  s.shed = r.service.shed;
  s.dispatched = r.service.dispatched;
  s.assigned = r.service.assigned;
  s.max_depth = r.service.max_queue_depth;
  s.q_p50 = r.service.quote_latency_s.Value(50);
  s.q_p99 = r.service.quote_latency_s.Value(99);
  s.q_p999 = r.service.quote_latency_s.Value(99.9);
  s.a_p50 = r.service.assign_latency_s.Value(50);
  s.a_p99 = r.service.assign_latency_s.Value(99);
  s.a_p999 = r.service.assign_latency_s.Value(99.9);
  s.sim_assigned = r.sim.requests_assigned;
  s.sim_completed = r.sim.requests_completed;
  s.sim_shared = r.sim.requests_shared;
  s.revenue = r.sim.revenue_total;
  s.fleet_m = r.sim.fleet_total_distance_m;
  return s;
}

ServiceReport RunOnce(int dispatch_threads, size_t queue_capacity,
                      double shed_deadline_s = 10.0,
                      double assign_cost_s = 0.05) {
  ServiceFixture f = MakeFixture(30, dispatch_threads);
  ServiceOptions opts;
  opts.batch_window_s = 2.0;
  opts.drain_s = 120.0;
  opts.queue_capacity = queue_capacity;
  opts.shed_deadline_s = shed_deadline_s;
  opts.assign_cost_s = assign_cost_s;
  opts.quote_cost_s = 0.01;
  opts.choice.model = sim::RiderChoiceModel::kWeightedUtility;
  DispatchService server(*f.system, opts);
  PoissonArrivals process(f.graph, ModestLoad());
  auto report = server.Run(process);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return *std::move(report);
}

// The virtual-clock determinism contract (DESIGN.md section 11): same
// seed, same options => bit-identical service report, across repeats,
// dispatch strategies (sequential vs 2-thread parallel) and queue
// capacities that never fill.
TEST(DispatchServiceTest, VirtualClockDeterministicAcrossThreadsAndRepeats) {
  const Snapshot reference = Snap(RunOnce(0, 4096));
  EXPECT_GT(reference.offered, 0u);
  EXPECT_GT(reference.assigned, 0u);
  for (const int threads : {0, 1, 2}) {
    for (const size_t cap : {size_t{4096}, size_t{1 << 16}}) {
      const Snapshot s = Snap(RunOnce(threads, cap));
      EXPECT_TRUE(reference == s) << "threads=" << threads << " cap=" << cap;
    }
  }
}

// Every offered request lands in exactly one bucket of the admission
// funnel, and only dispatched ones can be assigned.
TEST(DispatchServiceTest, AdmissionFunnelAccounting) {
  const ServiceReport r = RunOnce(0, 64, /*shed_deadline_s=*/5.0,
                                  /*assign_cost_s=*/1.0);
  const ServiceStats& s = r.service;
  EXPECT_EQ(s.offered, s.ingested + s.rejected);
  EXPECT_EQ(s.ingested, s.shed + s.dispatched);
  EXPECT_LE(s.assigned, s.dispatched);
  EXPECT_EQ(s.dispatched, static_cast<uint64_t>(r.sim.requests_submitted));
  // assign_cost 1.0 => capacity 1/s against offered 1.5/s: the backlog
  // outgrows the 5s deadline within seconds, so the shedder must have
  // engaged — or the whole overload path went untested.
  EXPECT_GT(s.shed + s.rejected, 0u);
}

// With a deadline shedder, every dispatched request's modeled start
// delay is <= deadline, so quote latency is bounded by deadline +
// quote_cost and assign latency by deadline + assign_cost.
TEST(DispatchServiceTest, DeadlineShedderBoundsLatency) {
  const double deadline = 5.0;
  const double assign_cost = 1.0;  // capacity 1/s against offered 1.5/s
  const double quote_cost = 0.01;
  const ServiceReport r =
      RunOnce(0, 4096, deadline, assign_cost);
  const ServiceStats& s = r.service;
  EXPECT_GT(s.shed, 0u);
  const double slack = 1e-9;
  EXPECT_LE(s.quote_latency_s.Value(100), deadline + quote_cost + slack);
  EXPECT_LE(s.assign_latency_s.Value(100), deadline + assign_cost + slack);
}

// AdmitAll at an over-capacity rate: nothing shed, the backlog grows,
// and tail latency blows far past what the shedder would allow — the
// contrast that makes the knee visible in bench_e19.
TEST(DispatchServiceTest, AdmitAllLetsLatencyGrowUnderOverload) {
  const ServiceReport r = RunOnce(0, 1 << 16, /*shed_deadline_s=*/0.0,
                                  /*assign_cost_s=*/1.0);
  const ServiceStats& s = r.service;
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.rejected, 0u);
  // Offered 1.5/s against capacity 1/s for 120s: the final backlog is
  // tens of seconds, far beyond the 5s deadline profile.
  EXPECT_GT(s.quote_latency_s.Value(99), 10.0);
}

TEST(DispatchServiceTest, TinyQueueRejectsOverflow) {
  const ServiceReport r = RunOnce(0, 2);
  EXPECT_GT(r.service.rejected, 0u);
  EXPECT_EQ(r.service.offered, r.service.ingested + r.service.rejected);
}

TEST(DispatchServiceTest, RunIsOneShot) {
  ServiceFixture f = MakeFixture(10, 0);
  ServiceOptions opts;
  DispatchService server(*f.system, opts);
  PoissonArrivalOptions load;
  load.rate_per_s = 0.5;
  load.duration_s = 10.0;
  PoissonArrivals first(f.graph, load);
  ASSERT_TRUE(server.Run(first).ok());
  PoissonArrivals second(f.graph, load);
  EXPECT_FALSE(server.Run(second).ok());
}

TEST(DispatchServiceTest, QuoteReturnsOptionsWithoutCommitting) {
  ServiceFixture f = MakeFixture(20, 0);
  ServiceOptions opts;
  DispatchService server(*f.system, opts);
  sim::Trip probe;
  probe.origin = 0;
  probe.destination = static_cast<roadnet::VertexId>(
      f.graph.NumVertices() - 1);
  auto quote = server.Quote(probe, 0.0);
  ASSERT_TRUE(quote.ok()) << quote.status().ToString();
  EXPECT_GT(quote->direct_distance_m, 0.0);
  // Quoting commits nothing: every vehicle still has an empty schedule.
  for (const vehicle::Vehicle& v : f.system->fleet().vehicles()) {
    EXPECT_TRUE(v.IsEmpty());
  }
}

// Wall-clock mode end to end (heavily compressed): the producer thread,
// the shared clock and the per-worker quote observers all engage — the
// TSan job runs this. No determinism assertions by design: wall mode is
// measurement.
TEST(DispatchServiceTest, WallClockSmoke) {
  ServiceFixture f = MakeFixture(20, 2);
  ServiceOptions opts;
  opts.virtual_clock = false;
  opts.wall_time_scale = 600.0;  // 60 simulated seconds in ~0.1s of wall
  opts.batch_window_s = 2.0;
  opts.drain_s = 30.0;
  DispatchService server(*f.system, opts);
  PoissonArrivalOptions load;
  load.rate_per_s = 1.0;
  load.duration_s = 60.0;
  load.seed = 5;
  PoissonArrivals process(f.graph, load);
  auto report = server.Run(process);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ServiceStats& s = report->service;
  EXPECT_GT(s.offered, 0u);
  EXPECT_EQ(s.offered, s.ingested + s.rejected);
  EXPECT_EQ(s.ingested, s.shed + s.dispatched);
  if (s.assigned > 0) {
    EXPECT_GT(s.assign_latency_s.count(), 0u);
  }
}

TEST(AdaptiveAdmissionTest, DeadlineIsAlwaysOnHardBound) {
  AdaptiveAdmission a(5.0, LadderOptions{}, ZoneAdmissionOptions{});
  a.BeginDrain(2.0, 1, 6.0, 0, 0.0);
  EXPECT_EQ(a.Admit(6.0, 0), ShedReason::kDeadline);
  EXPECT_EQ(a.Admit(4.0, 0), ShedReason::kAdmit);
  // deadline <= 0 disables the hard bound entirely.
  AdaptiveAdmission open(0.0, LadderOptions{}, ZoneAdmissionOptions{});
  open.BeginDrain(2.0, 1, 100.0, 0, 0.0);
  EXPECT_EQ(open.Admit(100.0, 0), ShedReason::kAdmit);
}

TEST(AdaptiveAdmissionTest, LadderEscalatesOnStandingDelayOnly) {
  LadderOptions ladder;
  ladder.enabled = true;
  ladder.target_delay_s = 2.0;
  ladder.interval_s = 10.0;
  AdaptiveAdmission a(60.0, ladder, ZoneAdmissionOptions{});
  EXPECT_EQ(a.rung(), 0);
  // Standing delay above target across whole intervals: one rung per
  // interval boundary, capped at max_rung.
  for (int i = 1; i <= 6; ++i) {
    a.BeginDrain(10.0 * i, 4, 5.0, 0, 0.0);
  }
  EXPECT_EQ(a.rung(), ladder.max_rung);
  EXPECT_EQ(a.max_rung_reached(), ladder.max_rung);
  EXPECT_GE(a.escalations(), 3u);
  // Delay back under target: de-escalates one rung per interval.
  for (int i = 7; i <= 12; ++i) {
    a.BeginDrain(10.0 * i, 4, 0.5, 0, 0.0);
  }
  EXPECT_EQ(a.rung(), 0);
}

TEST(AdaptiveAdmissionTest, BurstDoesNotEscalate) {
  LadderOptions ladder;
  ladder.enabled = true;
  ladder.target_delay_s = 2.0;
  ladder.interval_s = 10.0;
  AdaptiveAdmission a(60.0, ladder, ZoneAdmissionOptions{});
  // A spike in one drain, but some drain in every interval still sees a
  // small minimum: no standing queue, no escalation.
  for (int i = 1; i <= 6; ++i) {
    a.BeginDrain(10.0 * i - 5.0, 4, 50.0, 0, 0.0);
    a.BeginDrain(10.0 * i, 4, 0.5, 0, 0.0);
  }
  EXPECT_EQ(a.rung(), 0);
  EXPECT_EQ(a.escalations(), 0u);
}

TEST(AdaptiveAdmissionTest, ZoneQuotaCapsHotZone) {
  ZoneAdmissionOptions zone;
  zone.zones = 2;
  zone.fair_factor = 1.0;
  zone.trigger_delay_s = 1.0;
  AdaptiveAdmission a(0.0, LadderOptions{}, zone);
  // Behind (min delay above trigger), capacity 4 requests over 2 zones:
  // quota = ceil(1.0 * 4 / 2) = 2 per zone.
  a.BeginDrain(10.0, 8, 2.0, 2, 4.0);
  EXPECT_EQ(a.Admit(2.0, 0), ShedReason::kAdmit);
  EXPECT_EQ(a.Admit(2.0, 0), ShedReason::kAdmit);
  EXPECT_EQ(a.Admit(2.0, 0), ShedReason::kZone);  // hot zone capped
  EXPECT_EQ(a.Admit(2.0, 1), ShedReason::kAdmit);  // cold zone unharmed
  // Not behind: quotas disarmed, the hot zone runs free.
  a.BeginDrain(20.0, 8, 0.5, 2, 4.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a.Admit(0.5, 0), ShedReason::kAdmit);
  }
}

TEST(AdaptiveAdmissionTest, DegradeForRungOrdersTheLadder) {
  LadderOptions ladder;
  ladder.probe_branch_cap = 4;
  const core::DegradeMode r0 = DegradeForRung(0, ladder);
  EXPECT_TRUE(r0.IsFull());
  const core::DegradeMode r1 = DegradeForRung(1, ladder);
  EXPECT_TRUE(r1.skip_full_rematch);
  EXPECT_TRUE(r1.effort.IsFullEffort());
  const core::DegradeMode r2 = DegradeForRung(2, ladder);
  EXPECT_TRUE(r2.skip_full_rematch);
  EXPECT_EQ(r2.effort.max_probe_branches, 4u);
  EXPECT_FALSE(r2.effort.empty_vehicle_only);
  const core::DegradeMode r3 = DegradeForRung(3, ladder);
  EXPECT_TRUE(r3.effort.empty_vehicle_only);
  EXPECT_EQ(r3.effort.max_probe_branches, 4u);
}

}  // namespace
}  // namespace ptrider::service
