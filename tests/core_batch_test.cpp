#include "core/batch.h"

#include <gtest/gtest.h>

#include "roadnet/paper_example.h"

namespace ptrider::core {
namespace {

using roadnet::MakePaperExampleNetwork;
using roadnet::PaperExampleNetwork;

class BatchTest : public ::testing::Test {
 protected:
  BatchTest() : ex_(MakePaperExampleNetwork()) {
    Config cfg;
    cfg.speed_mps = 1.0;
    cfg.vehicle_capacity = 4;
    cfg.default_max_wait_s = 100.0;
    cfg.default_service_sigma = 0.5;
    cfg.price_distance_unit_m = 1.0;
    cfg.max_planned_pickup_s = 1e6;
    roadnet::GridIndexOptions grid;
    grid.cells_x = 3;
    grid.cells_y = 3;
    auto sys = PTRider::Create(ex_.graph, cfg, grid);
    EXPECT_TRUE(sys.ok());
    sys_ = std::move(sys).value();
  }

  vehicle::Request MakeRequest(vehicle::RequestId id, int s, int d,
                               double submit = 0.0) {
    vehicle::Request r;
    r.id = id;
    r.start = ex_.v(s);
    r.destination = ex_.v(d);
    r.num_riders = 1;
    r.max_wait_s = 100.0;
    r.service_sigma = 0.5;
    r.submit_time_s = submit;
    return r;
  }

  PaperExampleNetwork ex_;
  std::unique_ptr<PTRider> sys_;
};

TEST_F(BatchTest, RequiresChooser) {
  BatchDispatcher dispatcher(*sys_);
  EXPECT_FALSE(dispatcher.Dispatch({}, 0.0, nullptr).ok());
}

TEST_F(BatchTest, EmptyBatchIsFine) {
  BatchDispatcher dispatcher(*sys_);
  auto out = dispatcher.Dispatch({}, 0.0, BatchDispatcher::ChooseEarliest);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST_F(BatchTest, ProcessesInTimestampOrderAndSeesEarlierCommitments) {
  ASSERT_TRUE(sys_->AddVehicle(ex_.v(13)).ok());  // one taxi only
  BatchDispatcher dispatcher(*sys_);
  // Submitted "simultaneously" but with distinct timestamps; passed in
  // reverse order to verify sorting.
  std::vector<vehicle::Request> batch = {
      MakeRequest(2, 12, 17, /*submit=*/1.0),
      MakeRequest(1, 10, 11, /*submit=*/0.5),
  };
  auto out = dispatcher.Dispatch(batch, 2.0,
                                 BatchDispatcher::ChooseEarliest);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  // Request 1 (earlier timestamp) processed first.
  EXPECT_EQ((*out)[0].request.id, 1);
  EXPECT_EQ((*out)[1].request.id, 2);
  ASSERT_TRUE((*out)[0].assigned);
  // The second request matched against the taxi already carrying the
  // first: its options reflect the updated schedule (greedy strategy).
  ASSERT_TRUE((*out)[1].assigned);
  EXPECT_EQ(sys_->fleet().at(0).tree().NumPendingRequests(), 2u);
}

TEST_F(BatchTest, DeclinedRequestsLeaveNoState) {
  ASSERT_TRUE(sys_->AddVehicle(ex_.v(13)).ok());
  BatchDispatcher dispatcher(*sys_);
  auto decline_all = [](const vehicle::Request&, const MatchResult&) {
    return std::optional<size_t>{};
  };
  auto out =
      dispatcher.Dispatch({MakeRequest(5, 12, 17)}, 0.0, decline_all);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE((*out)[0].assigned);
  EXPECT_FALSE((*out)[0].match.options.empty());
  EXPECT_TRUE(sys_->fleet().at(0).IsEmpty());
  EXPECT_EQ(sys_->AssignedVehicle(5), vehicle::kInvalidVehicle);
}

TEST_F(BatchTest, InvalidRequestDoesNotAbortBatch) {
  ASSERT_TRUE(sys_->AddVehicle(ex_.v(13)).ok());
  BatchDispatcher dispatcher(*sys_);
  vehicle::Request bad = MakeRequest(7, 12, 12);  // s == d
  bad.destination = bad.start;
  auto out = dispatcher.Dispatch({bad, MakeRequest(8, 12, 17)}, 0.0,
                                 BatchDispatcher::ChooseCheapest);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_FALSE((*out)[0].assigned);
  EXPECT_TRUE((*out)[1].assigned);
}

TEST_F(BatchTest, BadChooserIndexSurfaces) {
  ASSERT_TRUE(sys_->AddVehicle(ex_.v(13)).ok());
  BatchDispatcher dispatcher(*sys_);
  auto out_of_range = [](const vehicle::Request&,
                         const MatchResult& match) {
    return std::optional<size_t>{match.options.size() + 5};
  };
  EXPECT_EQ(dispatcher.Dispatch({MakeRequest(9, 12, 17)}, 0.0,
                                out_of_range)
                .status()
                .code(),
            util::StatusCode::kOutOfRange);
}

TEST_F(BatchTest, ChooserHelpers) {
  MatchResult match;
  match.options.resize(2);
  match.options[0].pickup_time_s = 10.0;
  match.options[0].price = 9.0;
  match.options[1].pickup_time_s = 20.0;
  match.options[1].price = 4.0;
  vehicle::Request r;
  EXPECT_EQ(BatchDispatcher::ChooseEarliest(r, match), 0u);
  EXPECT_EQ(BatchDispatcher::ChooseCheapest(r, match), 1u);
  EXPECT_FALSE(BatchDispatcher::ChooseEarliest(r, {}).has_value());
  EXPECT_FALSE(BatchDispatcher::ChooseCheapest(r, {}).has_value());
}

TEST_F(BatchTest, GreedyCapacityContention) {
  // Capacity 4, three 1-rider requests sharing a corridor: greedy order
  // assigns all three to the single taxi when feasible.
  ASSERT_TRUE(sys_->AddVehicle(ex_.v(9)).ok());
  BatchDispatcher dispatcher(*sys_);
  std::vector<vehicle::Request> batch = {
      MakeRequest(1, 10, 11, 0.0), MakeRequest(2, 10, 12, 0.1),
      MakeRequest(3, 11, 12, 0.2)};
  auto out =
      dispatcher.Dispatch(batch, 1.0, BatchDispatcher::ChooseCheapest);
  ASSERT_TRUE(out.ok());
  int assigned = 0;
  for (const BatchItem& item : *out) assigned += item.assigned ? 1 : 0;
  EXPECT_EQ(assigned, 3);
  EXPECT_EQ(sys_->fleet().at(0).tree().NumPendingRequests(), 3u);
}

}  // namespace
}  // namespace ptrider::core
