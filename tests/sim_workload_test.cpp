#include "sim/workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "roadnet/graph_generator.h"
#include "roadnet/vertex_locator.h"
#include "util/random.h"

namespace ptrider::sim {
namespace {

roadnet::RoadNetwork TestCity() {
  roadnet::CityGridOptions opts;
  opts.rows = 12;
  opts.cols = 12;
  opts.seed = 5;
  auto g = roadnet::MakeCityGrid(opts);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(VertexLocatorTest, FindsExactVertices) {
  const roadnet::RoadNetwork g = TestCity();
  const roadnet::VertexLocator locator(g);
  for (roadnet::VertexId v = 0;
       v < static_cast<roadnet::VertexId>(g.NumVertices()); v += 7) {
    EXPECT_EQ(locator.Nearest(g.Coord(v)), v);
  }
}

TEST(VertexLocatorTest, NearestIsTrulyNearest) {
  const roadnet::RoadNetwork g = TestCity();
  const roadnet::VertexLocator locator(g, 16);
  util::Rng rng(3);
  const util::BoundingBox& box = g.bounds();
  for (int i = 0; i < 100; ++i) {
    const util::Point p{
        rng.UniformDouble(box.min_x - 500.0, box.max_x + 500.0),
        rng.UniformDouble(box.min_y - 500.0, box.max_y + 500.0)};
    const roadnet::VertexId got = locator.Nearest(p);
    ASSERT_NE(got, roadnet::kInvalidVertex);
    const double got_d = util::EuclideanDistance(p, g.Coord(got));
    for (roadnet::VertexId v = 0;
         v < static_cast<roadnet::VertexId>(g.NumVertices()); ++v) {
      EXPECT_LE(got_d, util::EuclideanDistance(p, g.Coord(v)) + 1e-9);
    }
  }
}

TEST(WorkloadTest, GeneratesSortedValidTrips) {
  const roadnet::RoadNetwork g = TestCity();
  HotspotWorkloadOptions opts;
  opts.num_trips = 500;
  opts.duration_s = 3600.0;
  auto trips = GenerateHotspotTrips(g, opts);
  ASSERT_TRUE(trips.ok());
  ASSERT_EQ(trips->size(), 500u);
  double prev = 0.0;
  for (const Trip& t : *trips) {
    EXPECT_GE(t.time_s, prev);
    EXPECT_LE(t.time_s, opts.duration_s);
    EXPECT_TRUE(g.IsValidVertex(t.origin));
    EXPECT_TRUE(g.IsValidVertex(t.destination));
    EXPECT_NE(t.origin, t.destination);
    EXPECT_GE(t.num_riders, 1);
    EXPECT_LE(t.num_riders, 4);
    prev = t.time_s;
  }
}

TEST(WorkloadTest, DeterministicPerSeed) {
  const roadnet::RoadNetwork g = TestCity();
  HotspotWorkloadOptions opts;
  opts.num_trips = 100;
  auto a = GenerateHotspotTrips(g, opts);
  auto b = GenerateHotspotTrips(g, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].origin, (*b)[i].origin);
    EXPECT_EQ((*a)[i].destination, (*b)[i].destination);
    EXPECT_DOUBLE_EQ((*a)[i].time_s, (*b)[i].time_s);
  }
}

TEST(WorkloadTest, HotspotBiasSkewsSpatialDistribution) {
  const roadnet::RoadNetwork g = TestCity();
  HotspotWorkloadOptions skewed;
  skewed.num_trips = 2000;
  skewed.num_hotspots = 2;
  skewed.origin_hotspot_bias = 1.0;
  skewed.hotspot_stddev_m = 150.0;
  auto trips = GenerateHotspotTrips(g, skewed);
  ASSERT_TRUE(trips.ok());
  // With 2 tight hotspots, origins concentrate on few vertices.
  std::vector<int> counts(g.NumVertices(), 0);
  for (const Trip& t : *trips) ++counts[static_cast<size_t>(t.origin)];
  int vertices_with_origins = 0;
  for (const int c : counts) {
    if (c > 0) ++vertices_with_origins;
  }
  EXPECT_LT(vertices_with_origins,
            static_cast<int>(g.NumVertices()) / 3);
}

TEST(WorkloadTest, HourlyProfileShapesArrivals) {
  const roadnet::RoadNetwork g = TestCity();
  HotspotWorkloadOptions opts;
  opts.num_trips = 5000;
  opts.hourly_profile.fill(0.0);
  opts.hourly_profile[8] = 1.0;   // everything between 8:00 and 9:00
  auto trips = GenerateHotspotTrips(g, opts);
  ASSERT_TRUE(trips.ok());
  for (const Trip& t : *trips) {
    EXPECT_GE(t.time_s, 8.0 * 3600.0);
    EXPECT_LT(t.time_s, 9.0 * 3600.0);
  }
}

TEST(WorkloadTest, SaveAndLoadRoundTrip) {
  const roadnet::RoadNetwork g = TestCity();
  HotspotWorkloadOptions opts;
  opts.num_trips = 50;
  auto trips = GenerateHotspotTrips(g, opts);
  ASSERT_TRUE(trips.ok());
  const std::string path = ::testing::TempDir() + "/trips_roundtrip.csv";
  ASSERT_TRUE(SaveTrips(*trips, path).ok());
  auto loaded = LoadTrips(g, path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), trips->size());
  for (size_t i = 0; i < trips->size(); ++i) {
    EXPECT_EQ((*loaded)[i].origin, (*trips)[i].origin);
    EXPECT_EQ((*loaded)[i].destination, (*trips)[i].destination);
    EXPECT_EQ((*loaded)[i].num_riders, (*trips)[i].num_riders);
    EXPECT_NEAR((*loaded)[i].time_s, (*trips)[i].time_s, 1e-3);
  }
  std::remove(path.c_str());
}

TEST(WorkloadTest, LoadAcceptsHeaderRowAndComments) {
  const roadnet::RoadNetwork g = TestCity();
  const std::string path = ::testing::TempDir() + "/trips_header.csv";
  {
    std::ofstream out(path);
    out << "# exported trace\n"
        << "time_s,origin,destination,riders\n"
        << "1.5,0,1,2\n"
        << "# mid-file comment\n"
        << "3.0,2,3,1\n";
  }
  auto loaded = LoadTrips(g, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_NEAR((*loaded)[0].time_s, 1.5, 1e-9);
  EXPECT_EQ((*loaded)[0].origin, 0);
  EXPECT_EQ((*loaded)[0].destination, 1);
  EXPECT_EQ((*loaded)[0].num_riders, 2);
  EXPECT_EQ((*loaded)[1].origin, 2);
  std::remove(path.c_str());
}

TEST(WorkloadTest, LoadAcceptsSpacedHeaderVariants) {
  const roadnet::RoadNetwork g = TestCity();
  const std::string path = ::testing::TempDir() + "/trips_header2.csv";
  {
    std::ofstream out(path);
    out << " time_s , origin , destination , riders \n"
        << "2.0,4,5,1\n";
  }
  auto loaded = LoadTrips(g, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].origin, 4);
  std::remove(path.c_str());
}

TEST(WorkloadTest, HeaderOnlyFileLoadsEmpty) {
  const roadnet::RoadNetwork g = TestCity();
  const std::string path = ::testing::TempDir() + "/trips_header_only.csv";
  {
    std::ofstream out(path);
    out << "time_s,origin,destination,riders\n";
  }
  auto loaded = LoadTrips(g, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(WorkloadTest, HeaderAfterFirstRecordIsRejected) {
  const roadnet::RoadNetwork g = TestCity();
  const std::string path = ::testing::TempDir() + "/trips_header_late.csv";
  {
    std::ofstream out(path);
    out << "1.0,0,1,1\n"
        << "time_s,origin,destination,riders\n";  // data, not a header
  }
  EXPECT_FALSE(LoadTrips(g, path).ok());
  std::remove(path.c_str());
}

TEST(WorkloadTest, LoadRejectsMalformedRows) {
  const roadnet::RoadNetwork g = TestCity();
  const std::string path = ::testing::TempDir() + "/trips_bad.csv";
  {
    std::ofstream out(path);
    out << "1.0,0,1\n";  // missing field
  }
  EXPECT_FALSE(LoadTrips(g, path).ok());
  {
    std::ofstream out(path);
    out << "1.0,0,1,1,7\n";  // extra field
  }
  EXPECT_FALSE(LoadTrips(g, path).ok());
  {
    std::ofstream out(path);
    out << "1.0,0,999999,1\n";  // vertex outside network
  }
  EXPECT_FALSE(LoadTrips(g, path).ok());
  {
    std::ofstream out(path);
    out << "1.0,-3,1,1\n";  // negative vertex id
  }
  EXPECT_FALSE(LoadTrips(g, path).ok());
  {
    std::ofstream out(path);
    out << "1.0,0,1,0\n";  // zero riders
  }
  EXPECT_FALSE(LoadTrips(g, path).ok());
  {
    std::ofstream out(path);
    out << "1.0,5,5,1\n";  // origin == destination
  }
  EXPECT_FALSE(LoadTrips(g, path).ok());
  {
    std::ofstream out(path);
    out << "abc,0,1,1\n";  // non-numeric time
  }
  EXPECT_FALSE(LoadTrips(g, path).ok());
  {
    std::ofstream out(path);
    out << "1.0,0,1,two\n";  // non-numeric riders
  }
  EXPECT_FALSE(LoadTrips(g, path).ok());
  {
    std::ofstream out(path);
    out << "2.0,0,1,1\n"
        << "\n"             // blank line mid-file
        << "1.0,0,1,x\n";   // error names the right line
  }
  const auto status = LoadTrips(g, path).status();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 3"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(WorkloadTest, LoadRejectsMissingFile) {
  const roadnet::RoadNetwork g = TestCity();
  EXPECT_FALSE(
      LoadTrips(g, ::testing::TempDir() + "/no_such_trace.csv").ok());
}

TEST(WorkloadTest, LoadSortsUnorderedRowsAndSkipsComments) {
  const roadnet::RoadNetwork g = TestCity();
  const std::string path = ::testing::TempDir() + "/trips_unsorted.csv";
  {
    std::ofstream out(path);
    out << "# time_s,origin,destination,riders\n"
        << "30.5,4,9,2\n"
        << "1.25,0,1,1\n"
        << "12.0,7,2,4\n";
  }
  auto trips = LoadTrips(g, path);
  ASSERT_TRUE(trips.ok());
  ASSERT_EQ(trips->size(), 3u);
  EXPECT_DOUBLE_EQ((*trips)[0].time_s, 1.25);
  EXPECT_EQ((*trips)[0].origin, 0);
  EXPECT_EQ((*trips)[1].num_riders, 4);
  EXPECT_DOUBLE_EQ((*trips)[2].time_s, 30.5);
  EXPECT_EQ((*trips)[2].destination, 9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ptrider::sim
