#include "roadnet/landmarks.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "roadnet/dijkstra.h"
#include "roadnet/graph_generator.h"
#include "roadnet/grid_index.h"
#include "core/distance_providers.h"
#include "vehicle/kinetic_tree.h"
#include "roadnet/paper_example.h"
#include "util/random.h"

namespace ptrider::roadnet {
namespace {

TEST(LandmarkIndexTest, RejectsBadInputs) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  EXPECT_FALSE(LandmarkIndex::Build(ex.graph, 0).ok());
  GraphBuilder b;
  const VertexId a = b.AddVertex({0, 0});
  const VertexId c = b.AddVertex({1, 0});
  ASSERT_TRUE(b.AddEdge(a, c, 1.0).ok());  // asymmetric
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(LandmarkIndex::Build(*g, 2).ok());
}

TEST(LandmarkIndexTest, LandmarksAreDistinctAndSpread) {
  CityGridOptions opts;
  opts.rows = 15;
  opts.cols = 15;
  opts.seed = 3;
  auto g = MakeCityGrid(opts);
  ASSERT_TRUE(g.ok());
  auto index = LandmarkIndex::Build(*g, 8, /*seed=*/5);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_landmarks(), 8u);
  std::vector<VertexId> sorted = index->landmarks();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
            sorted.end());
  EXPECT_GT(index->ApproxMemoryBytes(), 0u);
}

// Property: admissibility across graph styles and landmark counts.
class LandmarkBoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(LandmarkBoundsTest, AdmissibleOnRandomPairs) {
  CityGridOptions opts;
  opts.rows = 14;
  opts.cols = 14;
  opts.seed = 9;
  auto g = MakeCityGrid(opts);
  ASSERT_TRUE(g.ok());
  auto index = LandmarkIndex::Build(*g, GetParam(), 7);
  ASSERT_TRUE(index.ok());
  DijkstraEngine dij(*g);
  util::Rng rng(GetParam());
  for (int i = 0; i < 250; ++i) {
    const auto u = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g->NumVertices()) - 1));
    const auto v = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g->NumVertices()) - 1));
    const Weight exact = dij.Distance(u, v);
    const Weight lb = index->LowerBound(u, v);
    EXPECT_LE(lb, exact * (1.0 + 1e-12) + 1e-9)
        << GetParam() << " landmarks, " << u << "->" << v;
    if (u == v) {
      EXPECT_DOUBLE_EQ(lb, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, LandmarkBoundsTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(LandmarkIndexTest, ExactOnLandmarkPairs) {
  // For u = a landmark, |d(L,u) - d(L,v)| with L = u gives d(u,v):
  // the bound is exact from landmarks themselves.
  CityGridOptions opts;
  opts.rows = 10;
  opts.cols = 10;
  auto g = MakeCityGrid(opts);
  ASSERT_TRUE(g.ok());
  auto index = LandmarkIndex::Build(*g, 4, 2);
  ASSERT_TRUE(index.ok());
  DijkstraEngine dij(*g);
  for (const VertexId lm : index->landmarks()) {
    for (VertexId v = 0; v < static_cast<VertexId>(g->NumVertices());
         v += 17) {
      EXPECT_NEAR(index->LowerBound(lm, v), dij.Distance(lm, v), 1e-9);
    }
  }
}

TEST(LandmarkIndexTest, ComplementsGridBounds) {
  // Neither estimator dominates pointwise; max(grid, alt) is admissible
  // and at least as tight as either. (This is what an integration as a
  // DistanceProvider would use.)
  CityGridOptions opts;
  opts.rows = 14;
  opts.cols = 14;
  opts.seed = 21;
  auto g = MakeCityGrid(opts);
  ASSERT_TRUE(g.ok());
  auto alt = LandmarkIndex::Build(*g, 8, 3);
  ASSERT_TRUE(alt.ok());
  GridIndexOptions gopts;
  gopts.cells_x = 8;
  gopts.cells_y = 8;
  auto grid = GridIndex::Build(*g, gopts);
  ASSERT_TRUE(grid.ok());
  DijkstraEngine dij(*g);
  util::Rng rng(10);
  for (int i = 0; i < 150; ++i) {
    const auto u = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g->NumVertices()) - 1));
    const auto v = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g->NumVertices()) - 1));
    const Weight exact = dij.Distance(u, v);
    const Weight combined =
        std::max(alt->LowerBound(u, v), grid->LowerBound(u, v));
    EXPECT_LE(combined, exact * (1.0 + 1e-12) + 1e-9);
  }
}

TEST(KineticTreeCapTest, BranchCapBoundsScheduleSet) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  DistanceOracle oracle(ex.graph);
  core::ExactDistanceProvider dist(oracle);
  vehicle::ScheduleContext ctx{0.0, 1.0};
  vehicle::KineticTree capped(ex.v(1), 8, /*max_branches=*/2);
  vehicle::KineticTree unlimited(ex.v(1), 8);
  for (int i = 1; i <= 3; ++i) {
    vehicle::Request r;
    r.id = i;
    r.start = ex.v(2 + i);
    r.destination = ex.v(10 + i);
    r.num_riders = 1;
    r.max_wait_s = 1e6;
    r.service_sigma = 5.0;
    auto cands = capped.TrialInsert(r, ctx, dist, nullptr);
    if (!cands.empty()) {
      ASSERT_TRUE(capped
                      .CommitInsert(r, cands.front().pickup_distance, 0.0,
                                    ctx, dist)
                      .ok());
    }
    auto cands2 = unlimited.TrialInsert(r, ctx, dist, nullptr);
    if (!cands2.empty()) {
      ASSERT_TRUE(unlimited
                      .CommitInsert(r, cands2.front().pickup_distance, 0.0,
                                    ctx, dist)
                      .ok());
    }
    EXPECT_LE(capped.NumBranches(), 2u);
  }
  EXPECT_GT(unlimited.NumBranches(), 2u)
      << "scenario too small to exercise the cap";
  // The capped tree keeps the best schedule: totals match.
  EXPECT_DOUBLE_EQ(capped.BestTotalDistance(),
                   unlimited.BestTotalDistance());
}

}  // namespace
}  // namespace ptrider::roadnet
