#include "service/workload_driver.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "roadnet/graph_generator.h"

namespace ptrider::service {
namespace {

roadnet::RoadNetwork TestGraph() {
  roadnet::CityGridOptions opts;
  opts.rows = 6;
  opts.cols = 6;
  opts.seed = 11;
  auto graph = roadnet::MakeCityGrid(opts);
  EXPECT_TRUE(graph.ok());
  return *std::move(graph);
}

std::vector<sim::Trip> Collect(ArrivalProcess& process) {
  std::vector<sim::Trip> trips;
  while (auto t = process.Next()) trips.push_back(*t);
  return trips;
}

TEST(PoissonArrivalsTest, DeterministicUnderFixedSeed) {
  const roadnet::RoadNetwork graph = TestGraph();
  PoissonArrivalOptions opts;
  opts.rate_per_s = 2.0;
  opts.duration_s = 120.0;
  opts.seed = 99;
  PoissonArrivals a(graph, opts);
  PoissonArrivals b(graph, opts);
  const auto ta = Collect(a);
  const auto tb = Collect(b);
  ASSERT_EQ(ta.size(), tb.size());
  ASSERT_FALSE(ta.empty());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].time_s, tb[i].time_s);
    EXPECT_EQ(ta[i].origin, tb[i].origin);
    EXPECT_EQ(ta[i].destination, tb[i].destination);
    EXPECT_EQ(ta[i].num_riders, tb[i].num_riders);
  }
}

TEST(PoissonArrivalsTest, TimeSortedValidAndWithinHorizon) {
  const roadnet::RoadNetwork graph = TestGraph();
  PoissonArrivalOptions opts;
  opts.rate_per_s = 3.0;
  opts.duration_s = 200.0;
  PoissonArrivals process(graph, opts);
  const auto trips = Collect(process);
  ASSERT_FALSE(trips.empty());
  double prev = 0.0;
  for (const sim::Trip& t : trips) {
    EXPECT_GE(t.time_s, prev);
    EXPECT_GT(t.time_s, 0.0);  // no atom at the origin
    EXPECT_LE(t.time_s, opts.duration_s);
    EXPECT_TRUE(graph.IsValidVertex(t.origin));
    EXPECT_TRUE(graph.IsValidVertex(t.destination));
    EXPECT_NE(t.origin, t.destination);
    EXPECT_GE(t.num_riders, 1);
    EXPECT_LE(t.num_riders, 4);
    prev = t.time_s;
  }
  // Rate sanity: expect within a loose factor of rate * duration.
  const double expected = opts.rate_per_s * opts.duration_s;
  EXPECT_GT(static_cast<double>(trips.size()), 0.5 * expected);
  EXPECT_LT(static_cast<double>(trips.size()), 1.5 * expected);
}

TEST(TraceArrivalsTest, ReplaysSortedAndCompressesByRateMultiplier) {
  std::vector<sim::Trip> trace(3);
  trace[0].time_s = 30.0;
  trace[1].time_s = 10.0;  // out of order on purpose: replay sorts
  trace[2].time_s = 20.0;
  for (auto& t : trace) {
    t.origin = 0;
    t.destination = 1;
  }
  TraceArrivals process(trace, /*rate_multiplier=*/2.0);
  EXPECT_DOUBLE_EQ(process.end_time_s(), 15.0);
  const auto out = Collect(process);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].time_s, 5.0);
  EXPECT_DOUBLE_EQ(out[1].time_s, 10.0);
  EXPECT_DOUBLE_EQ(out[2].time_s, 15.0);
}

TEST(WorkloadDriverTest, PumpUntilIngestsDueArrivalsInOrder) {
  std::vector<sim::Trip> trace(4);
  trace[0].time_s = 1.0;
  trace[1].time_s = 2.0;
  trace[2].time_s = 2.5;
  trace[3].time_s = 7.0;
  TraceArrivals process(trace);
  RequestQueue queue(16);
  WorkloadDriver driver(process, queue);

  EXPECT_EQ(driver.PumpUntil(0.5), 0u);
  EXPECT_EQ(driver.PumpUntil(2.5), 3u);
  std::vector<IngestedTrip> out;
  queue.DrainTo(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].ingest_time_s, 1.0);
  EXPECT_DOUBLE_EQ(out[1].ingest_time_s, 2.0);
  EXPECT_DOUBLE_EQ(out[2].ingest_time_s, 2.5);

  // The 7.0 arrival is not due yet; a later pump delivers it.
  EXPECT_EQ(driver.PumpUntil(10.0), 1u);
  out.clear();
  queue.DrainTo(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].ingest_time_s, 7.0);
  EXPECT_EQ(driver.offered(), 4u);
}

TEST(WorkloadDriverTest, PumpCountsRejectsAsOffered) {
  std::vector<sim::Trip> trace(5);
  for (size_t i = 0; i < trace.size(); ++i) {
    trace[i].time_s = static_cast<double>(i);
  }
  TraceArrivals process(trace);
  RequestQueue queue(2);
  WorkloadDriver driver(process, queue);
  EXPECT_EQ(driver.PumpUntil(100.0), 5u);
  EXPECT_EQ(driver.offered(), 5u);
  EXPECT_EQ(queue.pushed(), 2u);
  EXPECT_EQ(queue.rejected(), 3u);
  // The two accepted are the two earliest (arrival order).
  std::vector<IngestedTrip> out;
  queue.DrainTo(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].trip.time_s, 0.0);
  EXPECT_DOUBLE_EQ(out[1].trip.time_s, 1.0);
}

// Bounded-retry backpressure: a queue-full rejection parks the arrival
// on a deterministic backoff schedule, a later pump (after the queue
// drained) re-pushes it with the original arrival stamp intact.
TEST(WorkloadDriverTest, RetryRecoversAfterDrainWithOriginalStamp) {
  std::vector<sim::Trip> trace(2);
  trace[0].time_s = 1.0;
  trace[1].time_s = 1.5;
  TraceArrivals process(trace);
  RequestQueue queue(1);
  RetryOptions retry;
  retry.max_attempts = 2;
  retry.backoff_s = 1.0;
  retry.jitter_frac = 0.0;  // exact due times for the assertions below
  WorkloadDriver driver(process, queue, retry);

  EXPECT_EQ(driver.PumpUntil(2.0), 2u);  // first accepted, second parked
  EXPECT_EQ(queue.pushed(), 1u);
  EXPECT_EQ(driver.retried(), 0u);
  EXPECT_EQ(driver.gave_up(), 0u);

  std::vector<IngestedTrip> out;
  queue.DrainTo(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].ingest_time_s, 1.0);

  // Backoff for attempt 1 is 1.0s from the rejection at t=2.0: not due
  // at 2.5, due at 3.0.
  EXPECT_EQ(driver.PumpUntil(2.5), 0u);
  EXPECT_EQ(queue.pushed(), 1u);
  EXPECT_EQ(driver.PumpUntil(3.0), 0u);  // retries are not new offers
  EXPECT_EQ(queue.pushed(), 2u);
  EXPECT_EQ(driver.retried(), 1u);
  out.clear();
  queue.DrainTo(out);
  ASSERT_EQ(out.size(), 1u);
  // The rider has been waiting since the arrival, not since the retry.
  EXPECT_DOUBLE_EQ(out[0].ingest_time_s, 1.5);
  EXPECT_EQ(driver.offered(), 2u);
}

// Exhausting the retry budget gives up exactly once per arrival.
TEST(WorkloadDriverTest, GivesUpAfterRetryBudget) {
  std::vector<sim::Trip> trace(2);
  trace[0].time_s = 0.0;
  trace[1].time_s = 0.0;
  TraceArrivals process(trace);
  RequestQueue queue(1);
  RetryOptions retry;
  retry.max_attempts = 1;
  retry.backoff_s = 1.0;
  retry.jitter_frac = 0.0;
  WorkloadDriver driver(process, queue, retry);

  EXPECT_EQ(driver.PumpUntil(0.0), 2u);  // second parked (attempt 1)
  EXPECT_EQ(driver.PumpUntil(1.0), 0u);  // retry finds the queue still full
  EXPECT_EQ(driver.gave_up(), 1u);
  EXPECT_EQ(driver.retried(), 0u);
  EXPECT_EQ(driver.offered(), 2u);
  EXPECT_EQ(queue.pushed(), 1u);
}

// End-of-run epilogue: arrivals still parked on a backoff are given up,
// which is what closes the admission funnel —
// offered == accepted + gave_up.
TEST(WorkloadDriverTest, GiveUpPendingClosesTheFunnel) {
  std::vector<sim::Trip> trace(4);
  for (size_t i = 0; i < trace.size(); ++i) trace[i].time_s = 0.0;
  TraceArrivals process(trace);
  RequestQueue queue(1);
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.backoff_s = 10.0;
  WorkloadDriver driver(process, queue, retry);
  EXPECT_EQ(driver.PumpUntil(0.0), 4u);
  EXPECT_EQ(queue.pushed(), 1u);
  driver.GiveUpPending();
  EXPECT_EQ(driver.gave_up(), 3u);
  EXPECT_EQ(driver.offered(), queue.pushed() + driver.gave_up());
  driver.GiveUpPending();  // idempotent once drained
  EXPECT_EQ(driver.gave_up(), 3u);
}

// The jittered backoff schedule is part of the deterministic replay: two
// drivers with the same seed walk the same retry timeline; the jitter
// stays inside its configured band.
TEST(WorkloadDriverTest, RetryBackoffDeterministicBySeed) {
  const auto run = [](uint64_t seed) {
    std::vector<sim::Trip> trace(6);
    for (size_t i = 0; i < trace.size(); ++i) {
      trace[i].time_s = static_cast<double>(i) * 0.25;
    }
    TraceArrivals process(trace);
    RequestQueue queue(1);
    RetryOptions retry;
    retry.max_attempts = 3;
    retry.backoff_s = 0.5;
    retry.jitter_frac = 0.5;
    retry.seed = seed;
    WorkloadDriver driver(process, queue, retry);
    // Drain only every other pump so retries race real arrivals.
    std::vector<double> stamps;
    std::vector<IngestedTrip> out;
    for (int step = 0; step <= 40; ++step) {
      driver.PumpUntil(0.25 * step);
      if (step % 2 == 0) {
        out.clear();
        queue.DrainTo(out);
        for (const IngestedTrip& t : out) stamps.push_back(t.ingest_time_s);
      }
    }
    driver.GiveUpPending();
    struct Outcome {
      std::vector<double> stamps;
      uint64_t retried, gave_up, offered;
    };
    return Outcome{stamps, driver.retried(), driver.gave_up(),
                   driver.offered()};
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a.stamps, b.stamps);
  EXPECT_EQ(a.retried, b.retried);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.offered, 6u);
  EXPECT_EQ(a.offered, b.offered);
}

TEST(WorkloadDriverTest, RunBlockingClosesQueueAtExhaustion) {
  std::vector<sim::Trip> trace(3);
  trace[0].time_s = 0.01;
  trace[1].time_s = 0.02;
  trace[2].time_s = 0.03;
  TraceArrivals process(trace);
  RequestQueue queue(16);
  WorkloadDriver driver(process, queue);
  WallClock clock(/*time_scale=*/1000.0);  // compress to ~nothing of wall time
  driver.RunBlocking(clock);
  EXPECT_TRUE(queue.closed());
  std::vector<IngestedTrip> out;
  queue.DrainTo(out);
  ASSERT_EQ(out.size(), 3u);
  for (size_t i = 0; i < out.size(); ++i) {
    // Wall stamps: at or after the arrival instant, never before.
    EXPECT_GE(out[i].ingest_time_s, out[i].trip.time_s);
  }
}

}  // namespace
}  // namespace ptrider::service
