// DistanceOracle::Clone — the "one oracle per thread" contract. Clones
// answer identically, keep independent caches/statistics, and serve
// concurrent threads (the TSan CI job runs this file too).

#include "roadnet/distance_oracle.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "roadnet/graph_generator.h"

namespace ptrider::roadnet {
namespace {

RoadNetwork TestCity() {
  CityGridOptions opts;
  opts.rows = 10;
  opts.cols = 10;
  opts.seed = 3;
  auto g = MakeCityGrid(opts);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(DistanceOracleCloneTest, CloneAnswersIdentically) {
  const RoadNetwork g = TestCity();
  for (const SpAlgorithm algo : {SpAlgorithm::kDijkstra,
                                 SpAlgorithm::kBidirectional,
                                 SpAlgorithm::kAStar}) {
    DistanceOracleOptions opts;
    opts.algorithm = algo;
    DistanceOracle original(g, opts);
    DistanceOracle clone = original.Clone();
    for (VertexId u = 0; u < 40; u += 3) {
      for (VertexId v = 1; v < 60; v += 7) {
        EXPECT_EQ(original.Distance(u, v), clone.Distance(u, v))
            << SpAlgorithmName(algo) << " v" << u << "->v" << v;
      }
    }
  }
}

TEST(DistanceOracleCloneTest, CloneHasIndependentCacheAndStats) {
  const RoadNetwork g = TestCity();
  DistanceOracle original(g);
  (void)original.Distance(0, 5);
  (void)original.Distance(0, 5);  // cache hit on the original
  EXPECT_GT(original.queries(), 0u);
  EXPECT_GT(original.cache_hits(), 0u);

  DistanceOracle clone = original.Clone();
  EXPECT_EQ(clone.queries(), 0u);
  EXPECT_EQ(clone.cache_hits(), 0u);
  EXPECT_EQ(clone.computed(), 0u);

  // The clone's first identical query computes (cold cache) — the pair
  // was cached only in the original.
  (void)clone.Distance(0, 5);
  EXPECT_EQ(clone.cache_hits(), 0u);
  EXPECT_EQ(clone.computed(), 1u);

  // And clone queries leave the original's counters alone.
  const uint64_t before = original.queries();
  (void)clone.Distance(2, 9);
  EXPECT_EQ(original.queries(), before);
}

TEST(DistanceOracleCloneTest, ClonesServeConcurrentThreads) {
  const RoadNetwork g = TestCity();
  DistanceOracle original(g);
  // Reference answers, computed single-threaded.
  std::vector<Weight> expected;
  for (VertexId v = 0; v < 50; ++v) {
    expected.push_back(original.Distance(0, v));
  }

  constexpr int kThreads = 4;
  std::vector<DistanceOracle> oracles;
  oracles.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) oracles.push_back(original.Clone());

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        for (VertexId v = 0; v < 50; ++v) {
          if (oracles[static_cast<size_t>(t)].Distance(0, v) !=
              expected[static_cast<size_t>(v)]) {
            ++mismatches[static_cast<size_t>(t)];
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

}  // namespace
}  // namespace ptrider::roadnet
