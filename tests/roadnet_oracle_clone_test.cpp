// DistanceOracle::Clone — the "one oracle per thread" contract. Clones
// answer identically, keep independent caches/statistics, and serve
// concurrent threads (the TSan CI job runs this file too).

#include "roadnet/distance_oracle.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "roadnet/graph_generator.h"

namespace ptrider::roadnet {
namespace {

RoadNetwork TestCity() {
  CityGridOptions opts;
  opts.rows = 10;
  opts.cols = 10;
  opts.seed = 3;
  auto g = MakeCityGrid(opts);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(DistanceOracleCloneTest, CloneAnswersIdentically) {
  const RoadNetwork g = TestCity();
  for (const SpAlgorithm algo : {SpAlgorithm::kDijkstra,
                                 SpAlgorithm::kBidirectional,
                                 SpAlgorithm::kAStar,
                                 SpAlgorithm::kContractionHierarchy}) {
    DistanceOracleOptions opts;
    opts.algorithm = algo;
    DistanceOracle original(g, opts);
    DistanceOracle clone = original.Clone();
    for (VertexId u = 0; u < 40; u += 3) {
      for (VertexId v = 1; v < 60; v += 7) {
        EXPECT_EQ(original.Distance(u, v), clone.Distance(u, v))
            << SpAlgorithmName(algo) << " v" << u << "->v" << v;
      }
    }
  }
}

TEST(DistanceOracleCloneTest, CloneHasIndependentCacheAndStats) {
  const RoadNetwork g = TestCity();
  DistanceOracle original(g);
  (void)original.Distance(0, 5);
  (void)original.Distance(0, 5);  // cache hit on the original
  EXPECT_GT(original.queries(), 0u);
  EXPECT_GT(original.cache_hits(), 0u);

  DistanceOracle clone = original.Clone();
  EXPECT_EQ(clone.queries(), 0u);
  EXPECT_EQ(clone.cache_hits(), 0u);
  EXPECT_EQ(clone.computed(), 0u);

  // The clone's first identical query computes (cold cache) — the pair
  // was cached only in the original.
  (void)clone.Distance(0, 5);
  EXPECT_EQ(clone.cache_hits(), 0u);
  EXPECT_EQ(clone.computed(), 1u);

  // And clone queries leave the original's counters alone.
  const uint64_t before = original.queries();
  (void)clone.Distance(2, 9);
  EXPECT_EQ(original.queries(), before);
}

TEST(DistanceOracleCloneTest, CHIndexIsSharedNotRebuilt) {
  // The precomputed-table half of the Clone() contract: the contraction
  // hierarchy is built exactly once; every clone (and clone-of-clone)
  // queries the same immutable index through its own scratch.
  const RoadNetwork g = TestCity();
  DistanceOracleOptions opts;
  opts.algorithm = SpAlgorithm::kContractionHierarchy;
  DistanceOracle original(g, opts);
  ASSERT_NE(original.ch_index(), nullptr);

  DistanceOracle clone = original.Clone();
  DistanceOracle grandclone = clone.Clone();
  EXPECT_EQ(clone.ch_index(), original.ch_index());
  EXPECT_EQ(grandclone.ch_index(), original.ch_index());

  // Non-CH oracles have no index to share.
  DistanceOracle astar(g);
  EXPECT_EQ(astar.ch_index(), nullptr);
  EXPECT_EQ(astar.Clone().ch_index(), nullptr);
}

TEST(DistanceOracleCloneTest, CloneWithReusesIndexForSameAlgorithm) {
  const RoadNetwork g = TestCity();
  DistanceOracleOptions opts;
  opts.algorithm = SpAlgorithm::kContractionHierarchy;
  opts.cache_capacity = 0;
  DistanceOracle original(g, opts);

  // Changing per-clone scratch options (cache capacity) keeps the
  // shared index; answers are unchanged.
  DistanceOracleOptions cached = opts;
  cached.cache_capacity = 128;
  DistanceOracle with_cache = original.CloneWith(cached);
  EXPECT_EQ(with_cache.ch_index(), original.ch_index());
  for (VertexId v = 1; v < 30; v += 4) {
    EXPECT_EQ(with_cache.Distance(0, v), original.Distance(0, v));
  }
  (void)with_cache.Distance(0, 5);
  (void)with_cache.Distance(0, 5);
  EXPECT_GT(with_cache.cache_hits(), 0u);

  // Switching algorithms drops the index and answers identically.
  DistanceOracleOptions astar = opts;
  astar.algorithm = SpAlgorithm::kAStar;
  DistanceOracle switched = original.CloneWith(astar);
  EXPECT_EQ(switched.ch_index(), nullptr);
  for (VertexId v = 1; v < 30; v += 4) {
    EXPECT_EQ(switched.Distance(0, v), original.Distance(0, v));
  }
}

TEST(DistanceOracleCloneTest, ConcurrentCHClonesAnswerIdentically) {
  // TSan-covered (this file is in the CI ThreadSanitizer job): many
  // threads querying the one shared CHIndex concurrently must race on
  // nothing and agree bit-for-bit with a sequential oracle.
  const RoadNetwork g = TestCity();
  DistanceOracleOptions opts;
  opts.algorithm = SpAlgorithm::kContractionHierarchy;
  DistanceOracle original(g, opts);
  std::vector<Weight> expected;
  for (VertexId v = 0; v < 60; ++v) {
    expected.push_back(original.Distance(1, v));
  }

  constexpr int kThreads = 4;
  std::vector<DistanceOracle> oracles;
  oracles.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) oracles.push_back(original.Clone());

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        for (VertexId v = 0; v < 60; ++v) {
          if (oracles[static_cast<size_t>(t)].Distance(1, v) !=
              expected[static_cast<size_t>(v)]) {
            ++mismatches[static_cast<size_t>(t)];
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

TEST(DistanceOracleCloneTest, ClonesServeConcurrentThreads) {
  const RoadNetwork g = TestCity();
  DistanceOracle original(g);
  // Reference answers, computed single-threaded.
  std::vector<Weight> expected;
  for (VertexId v = 0; v < 50; ++v) {
    expected.push_back(original.Distance(0, v));
  }

  constexpr int kThreads = 4;
  std::vector<DistanceOracle> oracles;
  oracles.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) oracles.push_back(original.Clone());

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        for (VertexId v = 0; v < 50; ++v) {
          if (oracles[static_cast<size_t>(t)].Distance(0, v) !=
              expected[static_cast<size_t>(v)]) {
            ++mismatches[static_cast<size_t>(t)];
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

}  // namespace
}  // namespace ptrider::roadnet
