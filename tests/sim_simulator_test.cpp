#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "roadnet/graph_generator.h"
#include "sim/workload.h"

namespace ptrider::sim {
namespace {

struct SimFixture {
  roadnet::RoadNetwork graph;
  std::unique_ptr<core::PTRider> system;
};

SimFixture MakeFixture(size_t vehicles, core::MatcherAlgorithm algo,
                       uint64_t seed = 11) {
  SimFixture f;
  roadnet::CityGridOptions gopts;
  gopts.rows = 14;
  gopts.cols = 14;
  gopts.seed = seed;
  auto g = roadnet::MakeCityGrid(gopts);
  EXPECT_TRUE(g.ok());
  f.graph = std::move(g).value();

  core::Config cfg;
  cfg.matcher = algo;
  cfg.vehicle_capacity = 3;
  cfg.default_max_wait_s = 360.0;
  cfg.default_service_sigma = 0.5;
  cfg.max_planned_pickup_s = 600.0;
  roadnet::GridIndexOptions gridopts;
  gridopts.cells_x = 8;
  gridopts.cells_y = 8;
  auto sys = core::PTRider::Create(f.graph, cfg, gridopts);
  EXPECT_TRUE(sys.ok());
  f.system = std::move(sys).value();
  EXPECT_TRUE(f.system->InitFleetUniform(vehicles, seed).ok());
  return f;
}

std::vector<Trip> MakeTrips(const roadnet::RoadNetwork& g, size_t count,
                            double duration_s, uint64_t seed = 21) {
  HotspotWorkloadOptions opts;
  opts.num_trips = count;
  opts.duration_s = duration_s;
  opts.seed = seed;
  auto trips = GenerateHotspotTrips(g, opts);
  EXPECT_TRUE(trips.ok());
  return std::move(trips).value();
}

TEST(SimulatorTest, RunsSmallCityHour) {
  SimFixture f = MakeFixture(40, core::MatcherAlgorithm::kDualSide);
  const std::vector<Trip> trips = MakeTrips(f.graph, 120, 1800.0);
  Simulator sim(*f.system, SimulatorOptions{});
  auto report = sim.Run(trips);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->requests_submitted, 120);
  EXPECT_EQ(report->requests_assigned + report->requests_unserved,
            report->requests_submitted);
  // With 40 taxis on a small grid, most requests are served and finish.
  EXPECT_GT(report->requests_assigned, 60);
  EXPECT_GT(report->requests_completed, 0);
  EXPECT_LE(report->requests_completed, report->requests_assigned);
  EXPECT_LE(report->requests_shared, report->requests_completed);
  EXPECT_GT(report->fleet_total_distance_m, 0.0);
  EXPECT_LE(report->fleet_occupied_distance_m,
            report->fleet_total_distance_m + 1e-6);
  EXPECT_LE(report->fleet_shared_distance_m,
            report->fleet_occupied_distance_m + 1e-6);
  EXPECT_GE(report->detour_ratio.min(), 1.0 - 1e-6)
      << "no trip can beat its shortest path";
  EXPECT_FALSE(report->ToString().empty());
}

double MaxEdgeLength(const roadnet::RoadNetwork& g) {
  double max_edge = 0.0;
  for (roadnet::VertexId u = 0;
       u < static_cast<roadnet::VertexId>(g.NumVertices()); ++u) {
    for (const roadnet::Edge& e : g.OutEdges(u)) {
      max_edge = std::max(max_edge, e.weight);
    }
  }
  return max_edge;
}

TEST(SimulatorTest, DetourRespectsServiceConstraintUpToGranularity) {
  SimFixture f = MakeFixture(30, core::MatcherAlgorithm::kDualSide);
  const std::vector<Trip> trips = MakeTrips(f.graph, 80, 1200.0);
  Simulator sim(*f.system, SimulatorOptions{});
  auto report = sim.Run(trips);
  ASSERT_TRUE(report.ok());
  // Schedules are validated from vertices while redirects finish the
  // current edge first, so a trip can overrun its (1+sigma)*direct
  // allowance by at most ~2 edge lengths per redirect — never unbounded.
  EXPECT_LE(report->trip_overrun_m.max(), 2.0 * MaxEdgeLength(f.graph));
}

TEST(SimulatorTest, WaitsRespectMaxWaitUpToGranularity) {
  SimFixture f = MakeFixture(30, core::MatcherAlgorithm::kSingleSide);
  const std::vector<Trip> trips = MakeTrips(f.graph, 80, 1200.0);
  Simulator sim(*f.system, SimulatorOptions{});
  auto report = sim.Run(trips);
  ASSERT_TRUE(report.ok());
  // w = 360 s bounds actual - planned pick-up, up to the same vertex
  // granularity (2 edges of drive time) plus one tick.
  const double slack_s =
      2.0 * MaxEdgeLength(f.graph) / f.system->config().speed_mps + 1.0;
  EXPECT_LE(report->pickup_wait_s.max(), 360.0 + slack_s);
}

TEST(SimulatorTest, NoIdleCruisingParksVehicles) {
  SimFixture f = MakeFixture(25, core::MatcherAlgorithm::kDualSide);
  std::vector<Trip> no_trips;
  SimulatorOptions opts;
  opts.idle_cruising = false;
  opts.end_time_s = 60.0;
  Simulator sim(*f.system, opts);
  auto report = sim.Run(no_trips);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->fleet_total_distance_m, 0.0);
}

TEST(SimulatorTest, IdleCruisingMovesVehicles) {
  SimFixture f = MakeFixture(25, core::MatcherAlgorithm::kDualSide);
  std::vector<Trip> no_trips;
  SimulatorOptions opts;
  opts.end_time_s = 60.0;
  Simulator sim(*f.system, opts);
  auto report = sim.Run(no_trips);
  ASSERT_TRUE(report.ok());
  // 25 vehicles at 13.3 m/s for 60 s.
  EXPECT_NEAR(report->fleet_total_distance_m,
              25 * 60.0 * f.system->config().speed_mps,
              25 * 60.0 * f.system->config().speed_mps * 0.2);
  EXPECT_DOUBLE_EQ(report->fleet_occupied_distance_m, 0.0);
}

TEST(SimulatorTest, RejectsBadInputs) {
  SimFixture f = MakeFixture(5, core::MatcherAlgorithm::kDualSide);
  Simulator sim(*f.system, SimulatorOptions{});
  std::vector<Trip> unsorted = MakeTrips(f.graph, 10, 600.0);
  std::swap(unsorted.front().time_s, unsorted.back().time_s);
  EXPECT_FALSE(sim.Run(unsorted).ok());

  SimulatorOptions bad;
  bad.tick_s = 0.0;
  Simulator sim2(*f.system, bad);
  EXPECT_FALSE(sim2.Run({}).ok());
}

TEST(SimulatorTest, EmptyFleetFails) {
  roadnet::CityGridOptions gopts;
  gopts.rows = 6;
  gopts.cols = 6;
  auto g = roadnet::MakeCityGrid(gopts);
  ASSERT_TRUE(g.ok());
  auto sys = core::PTRider::Create(*g, core::Config{});
  ASSERT_TRUE(sys.ok());
  Simulator sim(**sys, SimulatorOptions{});
  EXPECT_FALSE(sim.Run({}).ok());
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  for (int run = 0; run < 2; ++run) {
    static SimulationReport first;
    SimFixture f = MakeFixture(20, core::MatcherAlgorithm::kDualSide, 77);
    const std::vector<Trip> trips = MakeTrips(f.graph, 50, 900.0, 42);
    SimulatorOptions opts;
    opts.seed = 5;
    Simulator sim(*f.system, opts);
    auto report = sim.Run(trips);
    ASSERT_TRUE(report.ok());
    if (run == 0) {
      first = *report;
    } else {
      EXPECT_EQ(report->requests_assigned, first.requests_assigned);
      EXPECT_EQ(report->requests_completed, first.requests_completed);
      EXPECT_EQ(report->requests_shared, first.requests_shared);
      EXPECT_DOUBLE_EQ(report->fleet_total_distance_m,
                       first.fleet_total_distance_m);
    }
  }
}

/// Rider choice models produce sensible aggregate differences.
TEST(SimulatorTest, CheapestRidersWaitLongerThanEarliestRiders) {
  double wait[2];
  double price[2];
  const RiderChoiceModel models[2] = {RiderChoiceModel::kEarliestPickup,
                                      RiderChoiceModel::kCheapest};
  for (int i = 0; i < 2; ++i) {
    SimFixture f = MakeFixture(60, core::MatcherAlgorithm::kDualSide, 31);
    const std::vector<Trip> trips = MakeTrips(f.graph, 150, 1800.0, 9);
    SimulatorOptions opts;
    opts.choice.model = models[i];
    Simulator sim(*f.system, opts);
    auto report = sim.Run(trips);
    ASSERT_TRUE(report.ok());
    ASSERT_GT(report->requests_completed, 10);
    wait[i] = report->pickup_wait_s.mean() +
              report->response_time_s.mean();  // tiny; keeps shape intent
    price[i] = report->quoted_price.mean();
  }
  // Cheapest riders pay no more on average than earliest-pickup riders.
  EXPECT_LE(price[1], price[0] + 1e-9);
  (void)wait;
}

}  // namespace
}  // namespace ptrider::sim
