#include "vehicle/vehicle_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/distance_providers.h"
#include "roadnet/distance_oracle.h"
#include "roadnet/paper_example.h"

namespace ptrider::vehicle {
namespace {

class VehicleIndexTest : public ::testing::Test {
 protected:
  VehicleIndexTest()
      : ex_(roadnet::MakePaperExampleNetwork()), oracle_(ex_.graph) {
    roadnet::GridIndexOptions opts;
    opts.cells_x = 3;
    opts.cells_y = 3;
    auto grid = roadnet::GridIndex::Build(ex_.graph, opts);
    EXPECT_TRUE(grid.ok());
    grid_ = std::make_unique<roadnet::GridIndex>(std::move(grid).value());
    index_ = std::make_unique<VehicleIndex>(*grid_);
  }

  bool InList(const std::vector<VehicleId>& list, VehicleId id) {
    return std::find(list.begin(), list.end(), id) != list.end();
  }

  roadnet::PaperExampleNetwork ex_;
  roadnet::DistanceOracle oracle_;
  std::unique_ptr<roadnet::GridIndex> grid_;
  std::unique_ptr<VehicleIndex> index_;
};

TEST_F(VehicleIndexTest, EmptyVehicleRegisteredInLocationCell) {
  Vehicle v(0, ex_.v(13), 3);
  index_->Update(v);
  const roadnet::CellId cell = grid_->CellOfVertex(ex_.v(13));
  EXPECT_TRUE(InList(index_->EmptyVehicles(cell), 0));
  EXPECT_FALSE(InList(index_->NonEmptyVehicles(cell), 0));
  EXPECT_EQ(index_->RegisteredCells(0),
            (std::vector<roadnet::CellId>{cell}));
  EXPECT_EQ(index_->size(), 1u);
}

TEST_F(VehicleIndexTest, NonEmptyVehicleCoversStopCells) {
  Vehicle v(1, ex_.v(1), 4);
  core::ExactDistanceProvider dist(oracle_);
  Request r;
  r.id = 1;
  r.start = ex_.v(2);
  r.destination = ex_.v(16);
  r.num_riders = 2;
  r.max_wait_s = 5.0;
  r.service_sigma = 0.2;
  ASSERT_TRUE(v.mutable_tree()
                  .CommitInsert(r, 6.0, 0.0, {0.0, 1.0}, dist)
                  .ok());
  index_->Update(v);

  const roadnet::CellId loc_cell = grid_->CellOfVertex(ex_.v(1));
  const roadnet::CellId pickup_cell = grid_->CellOfVertex(ex_.v(2));
  const roadnet::CellId drop_cell = grid_->CellOfVertex(ex_.v(16));
  EXPECT_TRUE(InList(index_->NonEmptyVehicles(loc_cell), 1));
  EXPECT_TRUE(InList(index_->NonEmptyVehicles(pickup_cell), 1));
  EXPECT_TRUE(InList(index_->NonEmptyVehicles(drop_cell), 1));
  EXPECT_FALSE(InList(index_->EmptyVehicles(loc_cell), 1));
  // Registered cells are sorted and unique.
  const auto cells = index_->RegisteredCells(1);
  EXPECT_TRUE(std::is_sorted(cells.begin(), cells.end()));
  EXPECT_EQ(std::adjacent_find(cells.begin(), cells.end()), cells.end());
}

TEST_F(VehicleIndexTest, UpdateMovesBetweenLists) {
  Vehicle v(2, ex_.v(13), 4);
  index_->Update(v);
  const roadnet::CellId old_cell = grid_->CellOfVertex(ex_.v(13));
  ASSERT_TRUE(InList(index_->EmptyVehicles(old_cell), 2));

  // Vehicle becomes non-empty: moves to the non-empty lists.
  core::ExactDistanceProvider dist(oracle_);
  Request r;
  r.id = 9;
  r.start = ex_.v(12);
  r.destination = ex_.v(17);
  r.num_riders = 1;
  r.max_wait_s = 100.0;
  r.service_sigma = 0.5;
  ASSERT_TRUE(v.mutable_tree()
                  .CommitInsert(r, 8.0, 0.0, {0.0, 1.0}, dist)
                  .ok());
  index_->Update(v);
  EXPECT_FALSE(InList(index_->EmptyVehicles(old_cell), 2));
  EXPECT_TRUE(InList(index_->NonEmptyVehicles(old_cell), 2));

  // Remove drops it everywhere.
  index_->Remove(2);
  EXPECT_FALSE(InList(index_->NonEmptyVehicles(old_cell), 2));
  EXPECT_TRUE(index_->RegisteredCells(2).empty());
  EXPECT_EQ(index_->size(), 0u);
}

TEST_F(VehicleIndexTest, UpdateIsIdempotent) {
  Vehicle v(3, ex_.v(5), 3);
  index_->Update(v);
  index_->Update(v);
  index_->Update(v);
  const roadnet::CellId cell = grid_->CellOfVertex(ex_.v(5));
  // Registered once despite repeated updates.
  EXPECT_EQ(std::count(index_->EmptyVehicles(cell).begin(),
                       index_->EmptyVehicles(cell).end(), 3),
            1);
  EXPECT_EQ(index_->update_count(), 3u);
}

TEST_F(VehicleIndexTest, RemoveUnknownIsNoop) {
  index_->Remove(77);
  EXPECT_EQ(index_->size(), 0u);
}

TEST_F(VehicleIndexTest, ManyVehiclesPartitionByCell) {
  // One vehicle at every vertex: each appears in exactly its own cell.
  for (int label = 1; label <= 17; ++label) {
    Vehicle v(static_cast<VehicleId>(label), ex_.v(label), 3);
    index_->Update(v);
  }
  size_t total = 0;
  for (roadnet::CellId c = 0; c < grid_->NumCells(); ++c) {
    total += index_->EmptyVehicles(c).size();
    EXPECT_TRUE(index_->NonEmptyVehicles(c).empty());
  }
  EXPECT_EQ(total, 17u);
}

}  // namespace
}  // namespace ptrider::vehicle
