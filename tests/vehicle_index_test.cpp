#include "vehicle/vehicle_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "core/distance_providers.h"
#include "roadnet/distance_oracle.h"
#include "roadnet/graph_generator.h"
#include "roadnet/paper_example.h"
#include "util/random.h"

namespace ptrider::vehicle {
namespace {

class VehicleIndexTest : public ::testing::Test {
 protected:
  VehicleIndexTest()
      : ex_(roadnet::MakePaperExampleNetwork()), oracle_(ex_.graph) {
    roadnet::GridIndexOptions opts;
    opts.cells_x = 3;
    opts.cells_y = 3;
    auto grid = roadnet::GridIndex::Build(ex_.graph, opts);
    EXPECT_TRUE(grid.ok());
    grid_ = std::make_unique<roadnet::GridIndex>(std::move(grid).value());
    index_ = std::make_unique<VehicleIndex>(*grid_);
  }

  bool InList(const std::vector<VehicleId>& list, VehicleId id) {
    return std::find(list.begin(), list.end(), id) != list.end();
  }

  roadnet::PaperExampleNetwork ex_;
  roadnet::DistanceOracle oracle_;
  std::unique_ptr<roadnet::GridIndex> grid_;
  std::unique_ptr<VehicleIndex> index_;
};

TEST_F(VehicleIndexTest, EmptyVehicleRegisteredInLocationCell) {
  Vehicle v(0, ex_.v(13), 3);
  index_->Update(v);
  const roadnet::CellId cell = grid_->CellOfVertex(ex_.v(13));
  EXPECT_TRUE(InList(index_->EmptyVehicles(cell), 0));
  EXPECT_FALSE(InList(index_->NonEmptyVehicles(cell), 0));
  EXPECT_EQ(index_->RegisteredCells(0),
            (std::vector<roadnet::CellId>{cell}));
  EXPECT_EQ(index_->size(), 1u);
}

TEST_F(VehicleIndexTest, NonEmptyVehicleCoversStopCells) {
  Vehicle v(1, ex_.v(1), 4);
  core::ExactDistanceProvider dist(oracle_);
  Request r;
  r.id = 1;
  r.start = ex_.v(2);
  r.destination = ex_.v(16);
  r.num_riders = 2;
  r.max_wait_s = 5.0;
  r.service_sigma = 0.2;
  ASSERT_TRUE(v.mutable_tree()
                  .CommitInsert(r, 6.0, 0.0, {0.0, 1.0}, dist)
                  .ok());
  index_->Update(v);

  const roadnet::CellId loc_cell = grid_->CellOfVertex(ex_.v(1));
  const roadnet::CellId pickup_cell = grid_->CellOfVertex(ex_.v(2));
  const roadnet::CellId drop_cell = grid_->CellOfVertex(ex_.v(16));
  EXPECT_TRUE(InList(index_->NonEmptyVehicles(loc_cell), 1));
  EXPECT_TRUE(InList(index_->NonEmptyVehicles(pickup_cell), 1));
  EXPECT_TRUE(InList(index_->NonEmptyVehicles(drop_cell), 1));
  EXPECT_FALSE(InList(index_->EmptyVehicles(loc_cell), 1));
  // Registered cells are sorted and unique.
  const auto cells = index_->RegisteredCells(1);
  EXPECT_TRUE(std::is_sorted(cells.begin(), cells.end()));
  EXPECT_EQ(std::adjacent_find(cells.begin(), cells.end()), cells.end());
}

TEST_F(VehicleIndexTest, UpdateMovesBetweenLists) {
  Vehicle v(2, ex_.v(13), 4);
  index_->Update(v);
  const roadnet::CellId old_cell = grid_->CellOfVertex(ex_.v(13));
  ASSERT_TRUE(InList(index_->EmptyVehicles(old_cell), 2));

  // Vehicle becomes non-empty: moves to the non-empty lists.
  core::ExactDistanceProvider dist(oracle_);
  Request r;
  r.id = 9;
  r.start = ex_.v(12);
  r.destination = ex_.v(17);
  r.num_riders = 1;
  r.max_wait_s = 100.0;
  r.service_sigma = 0.5;
  ASSERT_TRUE(v.mutable_tree()
                  .CommitInsert(r, 8.0, 0.0, {0.0, 1.0}, dist)
                  .ok());
  index_->Update(v);
  EXPECT_FALSE(InList(index_->EmptyVehicles(old_cell), 2));
  EXPECT_TRUE(InList(index_->NonEmptyVehicles(old_cell), 2));

  // Remove drops it everywhere.
  index_->Remove(2);
  EXPECT_FALSE(InList(index_->NonEmptyVehicles(old_cell), 2));
  EXPECT_TRUE(index_->RegisteredCells(2).empty());
  EXPECT_EQ(index_->size(), 0u);
}

TEST_F(VehicleIndexTest, UpdateIsIdempotent) {
  Vehicle v(3, ex_.v(5), 3);
  index_->Update(v);
  index_->Update(v);
  index_->Update(v);
  const roadnet::CellId cell = grid_->CellOfVertex(ex_.v(5));
  // Registered once despite repeated updates.
  EXPECT_EQ(std::count(index_->EmptyVehicles(cell).begin(),
                       index_->EmptyVehicles(cell).end(), 3),
            1);
  EXPECT_EQ(index_->update_count(), 3u);
}

TEST_F(VehicleIndexTest, RemoveUnknownIsNoop) {
  index_->Remove(77);
  EXPECT_EQ(index_->size(), 0u);
}

TEST_F(VehicleIndexTest, ShardMappingIsContiguousAndCoversAllShards) {
  VehicleIndex sharded(*grid_, 4);
  EXPECT_EQ(sharded.num_shards(), 4u);
  uint32_t prev = 0;
  std::vector<char> hit(4, 0);
  for (roadnet::CellId c = 0; c < grid_->NumCells(); ++c) {
    const uint32_t s = sharded.ShardOfCell(c);
    ASSERT_LT(s, 4u);
    EXPECT_GE(s, prev);  // contiguous ranges: non-decreasing in cell id
    prev = s;
    hit[s] = 1;
  }
  EXPECT_EQ(std::count(hit.begin(), hit.end(), 1), 4);
  // Shard counts beyond the cell count clamp instead of exploding.
  VehicleIndex tiny(*grid_, 10000);
  EXPECT_LE(tiny.num_shards(), static_cast<size_t>(grid_->NumCells()));
}

// --- Churn under Update/Remove interleavings --------------------------------
//
// The registration <-> list consistency invariant, plus the sharding
// headline: every shard count produces bit-identical lists for the same
// operation sequence (the per-cell operation order is shard-independent,
// DESIGN.md section 10). Exercised over random fleets of teleporting,
// committing and vanishing vehicles across several seeds.

class VehicleIndexChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VehicleIndexChurnTest, ConsistencyAndShardedEqualsUnsharded) {
  roadnet::CityGridOptions gopts;
  gopts.rows = 10;
  gopts.cols = 10;
  gopts.seed = 31;
  auto g = roadnet::MakeCityGrid(gopts);
  ASSERT_TRUE(g.ok());
  const roadnet::RoadNetwork graph = std::move(g).value();
  roadnet::GridIndexOptions grid_opts;
  grid_opts.cells_x = 6;
  grid_opts.cells_y = 6;
  auto grid = roadnet::GridIndex::Build(graph, grid_opts);
  ASSERT_TRUE(grid.ok());
  roadnet::DistanceOracle oracle(graph);
  core::ExactDistanceProvider dist(oracle);

  const std::vector<size_t> shard_counts = {1, 2, 4, 5};
  std::vector<VehicleIndex> indexes;
  indexes.reserve(shard_counts.size());
  for (const size_t s : shard_counts) indexes.emplace_back(*grid, s);

  constexpr int kVehicles = 16;
  std::vector<std::optional<Vehicle>> fleet(kVehicles);
  const auto n_vertices =
      static_cast<int64_t>(graph.NumVertices()) - 1;
  util::Rng rng(GetParam());
  RequestId next_request = 1;

  // Invariant check of one index against the live fleet: every list
  // entry is backed by a registration, lists carry no duplicates or
  // stale ids, the list kind matches the vehicle's emptiness, and the
  // location cell is always covered.
  const auto check_consistency = [&](const VehicleIndex& index) {
    std::map<VehicleId, std::vector<roadnet::CellId>> seen_empty;
    std::map<VehicleId, std::vector<roadnet::CellId>> seen_non_empty;
    for (roadnet::CellId c = 0; c < grid->NumCells(); ++c) {
      for (const VehicleId id : index.EmptyVehicles(c)) {
        seen_empty[id].push_back(c);
      }
      for (const VehicleId id : index.NonEmptyVehicles(c)) {
        seen_non_empty[id].push_back(c);
      }
    }
    size_t registered = 0;
    for (VehicleId id = 0; id < kVehicles; ++id) {
      SCOPED_TRACE("vehicle " + std::to_string(id));
      std::vector<roadnet::CellId> cells = index.RegisteredCells(id);
      EXPECT_TRUE(std::is_sorted(cells.begin(), cells.end()));
      EXPECT_EQ(std::adjacent_find(cells.begin(), cells.end()),
                cells.end());
      if (!fleet[static_cast<size_t>(id)].has_value()) {
        EXPECT_TRUE(cells.empty());
        EXPECT_EQ(seen_empty.count(id), 0u);
        EXPECT_EQ(seen_non_empty.count(id), 0u);
        continue;
      }
      ++registered;
      const Vehicle& v = *fleet[static_cast<size_t>(id)];
      auto& mine = v.IsEmpty() ? seen_empty[id] : seen_non_empty[id];
      auto& other = v.IsEmpty() ? seen_non_empty : seen_empty;
      EXPECT_EQ(other.count(id), 0u) << "entry in the wrong list kind";
      std::sort(mine.begin(), mine.end());
      EXPECT_EQ(mine, cells) << "lists and registration disagree";
      EXPECT_TRUE(std::binary_search(cells.begin(), cells.end(),
                                     grid->CellOfVertex(v.location())));
    }
    EXPECT_EQ(index.size(), registered);
  };

  // The sharded variants must mirror the unsharded reference exactly —
  // same entries in the same per-cell order.
  const auto check_shard_equality = [&] {
    for (size_t k = 1; k < indexes.size(); ++k) {
      SCOPED_TRACE("shards " + std::to_string(shard_counts[k]));
      for (roadnet::CellId c = 0; c < grid->NumCells(); ++c) {
        EXPECT_EQ(indexes[k].EmptyVehicles(c),
                  indexes[0].EmptyVehicles(c));
        EXPECT_EQ(indexes[k].NonEmptyVehicles(c),
                  indexes[0].NonEmptyVehicles(c));
      }
      EXPECT_EQ(indexes[k].size(), indexes[0].size());
      EXPECT_EQ(indexes[k].update_count(), indexes[0].update_count());
    }
  };

  for (int step = 0; step < 400; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    const auto id =
        static_cast<VehicleId>(rng.UniformInt(0, kVehicles - 1));
    const int64_t op = rng.UniformInt(0, 9);
    if (op < 2) {
      for (VehicleIndex& index : indexes) index.Remove(id);
      fleet[static_cast<size_t>(id)].reset();
    } else {
      Vehicle* v = fleet[static_cast<size_t>(id)].has_value()
                       ? &*fleet[static_cast<size_t>(id)]
                       : nullptr;
      if (op < 8 || v == nullptr) {
        // Teleport: fresh empty vehicle at a random vertex (also the
        // empty -> non-empty -> empty kind flips).
        fleet[static_cast<size_t>(id)].emplace(
            id, static_cast<roadnet::VertexId>(
                    rng.UniformInt(0, n_vertices)),
            4);
      } else if (v->tree().NumPendingRequests() < 3) {
        // Commit a request: the vehicle turns (or stays) non-empty and
        // registers its new stop cells.
        Request r;
        r.id = next_request++;
        r.start = static_cast<roadnet::VertexId>(
            rng.UniformInt(0, n_vertices));
        r.destination = static_cast<roadnet::VertexId>(
            rng.UniformInt(0, n_vertices));
        if (r.start == r.destination) continue;
        r.num_riders = 1;
        r.max_wait_s = 1e7;
        r.service_sigma = 20.0;
        const roadnet::Weight pd = dist.Exact(v->location(), r.start);
        ASSERT_NE(pd, roadnet::kInfWeight);
        ASSERT_TRUE(v->mutable_tree()
                        .CommitInsert(r, pd, 1.0, {0.0, 1.0}, dist)
                        .ok());
      }
      for (VehicleIndex& index : indexes) {
        index.Update(*fleet[static_cast<size_t>(id)]);
      }
    }
    if (step % 40 == 0) {
      for (const VehicleIndex& index : indexes) check_consistency(index);
      check_shard_equality();
    }
  }
  for (const VehicleIndex& index : indexes) check_consistency(index);
  check_shard_equality();
}

INSTANTIATE_TEST_SUITE_P(Seeds, VehicleIndexChurnTest,
                         ::testing::Values<uint64_t>(7, 21, 1234));

TEST_F(VehicleIndexTest, DeferredApplyMatchesImmediateUpdate) {
  // Prepare-then-ApplyBatch is the deferred path the movement commit and
  // the dispatcher use; it must land exactly where Update would.
  VehicleIndex deferred(*grid_, 3);
  Vehicle a(0, ex_.v(13), 3);
  Vehicle b(1, ex_.v(5), 3);
  std::vector<PendingUpdate> pending;
  pending.push_back(deferred.Prepare(a));
  pending.push_back(deferred.Prepare(b));
  deferred.ApplyBatch(pending);

  index_->Update(a);
  index_->Update(b);
  for (roadnet::CellId c = 0; c < grid_->NumCells(); ++c) {
    EXPECT_EQ(deferred.EmptyVehicles(c), index_->EmptyVehicles(c));
    EXPECT_EQ(deferred.NonEmptyVehicles(c), index_->NonEmptyVehicles(c));
  }
  EXPECT_EQ(deferred.size(), 2u);
  EXPECT_EQ(deferred.update_count(), 2u);
}

// --- Density-based shard load-balancing -------------------------------------
//
// Rebalance() moves shard *ownership* boundaries toward equal
// registration load, but never touches the per-cell lists or position
// handles — so a rebalanced sharded index must stay entry-for-entry
// identical to an unsharded one, and the pipelined engine may rebalance
// on whatever cadence it likes without perturbing reports.

TEST(VehicleIndexRebalanceTest, DensityShiftsBoundariesListsUnchanged) {
  roadnet::CityGridOptions gopts;
  gopts.rows = 10;
  gopts.cols = 10;
  gopts.seed = 31;
  auto g = roadnet::MakeCityGrid(gopts);
  ASSERT_TRUE(g.ok());
  const roadnet::RoadNetwork graph = std::move(g).value();
  roadnet::GridIndexOptions grid_opts;
  grid_opts.cells_x = 6;
  grid_opts.cells_y = 6;
  auto grid = roadnet::GridIndex::Build(graph, grid_opts);
  ASSERT_TRUE(grid.ok());

  VehicleIndex sharded(*grid, 4);
  VehicleIndex flat(*grid, 1);
  ASSERT_EQ(sharded.rebalance_count(), 1u);  // the ctor's uniform split

  // A hotspot: pile vehicles onto vertices in the lowest-numbered cells
  // so nearly all registration weight sits at the front of the cell
  // range, then fill in a sparse tail.
  VehicleId next = 0;
  for (roadnet::VertexId v = 0;
       v < static_cast<roadnet::VertexId>(graph.NumVertices()); ++v) {
    const roadnet::CellId c = grid->CellOfVertex(v);
    const int copies = c < 3 ? 12 : (v % 17 == 0 ? 1 : 0);
    for (int k = 0; k < copies; ++k) {
      Vehicle veh(next++, v, 4);
      sharded.Update(veh);
      flat.Update(veh);
    }
  }

  // Uniform split owes cell 5 to shard 0 (36 cells / 4 shards); after a
  // density rebalance the hotspot's weight pushes the boundary left.
  ASSERT_EQ(sharded.ShardOfCell(5), 0u);
  sharded.Rebalance();
  EXPECT_EQ(sharded.rebalance_count(), 2u);
  EXPECT_GT(sharded.ShardOfCell(5), 0u);
  // Ownership stays contiguous and covers every shard.
  uint32_t prev = 0;
  std::vector<char> hit(4, 0);
  for (roadnet::CellId c = 0; c < grid->NumCells(); ++c) {
    const uint32_t s = sharded.ShardOfCell(c);
    ASSERT_LT(s, 4u);
    EXPECT_GE(s, prev);
    prev = s;
    hit[s] = 1;
  }
  EXPECT_EQ(std::count(hit.begin(), hit.end(), 1), 4);

  // The regression core: rebalancing re-bucketed every registration yet
  // the observable lists are bit-identical to the unsharded index, and
  // further updates keep them so.
  const auto expect_lists_equal = [&] {
    for (roadnet::CellId c = 0; c < grid->NumCells(); ++c) {
      SCOPED_TRACE("cell " + std::to_string(c));
      EXPECT_EQ(sharded.EmptyVehicles(c), flat.EmptyVehicles(c));
      EXPECT_EQ(sharded.NonEmptyVehicles(c), flat.NonEmptyVehicles(c));
    }
  };
  expect_lists_equal();
  util::Rng rng(97);
  const auto n_vertices = static_cast<int64_t>(graph.NumVertices()) - 1;
  for (VehicleId id = 0; id < next; id += 3) {
    Vehicle veh(id,
                static_cast<roadnet::VertexId>(
                    rng.UniformInt(0, n_vertices)),
                4);
    sharded.Update(veh);
    flat.Update(veh);
  }
  expect_lists_equal();

  // The batch-cadence trigger: every kRebalanceInterval-th counted batch
  // rebalances (the pipelined engine calls this from its quiescent join
  // points).
  const uint64_t before = sharded.rebalance_count();
  for (int i = 0; i < 64; ++i) sharded.MaybeRebalance();
  EXPECT_EQ(sharded.rebalance_count(), before + 1);
  expect_lists_equal();
}

TEST_F(VehicleIndexTest, ManyVehiclesPartitionByCell) {
  // One vehicle at every vertex: each appears in exactly its own cell.
  for (int label = 1; label <= 17; ++label) {
    Vehicle v(static_cast<VehicleId>(label), ex_.v(label), 3);
    index_->Update(v);
  }
  size_t total = 0;
  for (roadnet::CellId c = 0; c < grid_->NumCells(); ++c) {
    total += index_->EmptyVehicles(c).size();
    EXPECT_TRUE(index_->NonEmptyVehicles(c).empty());
  }
  EXPECT_EQ(total, 17u);
}

}  // namespace
}  // namespace ptrider::vehicle
