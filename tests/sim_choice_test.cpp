#include "sim/choice.h"

#include <gtest/gtest.h>

namespace ptrider::sim {
namespace {

core::Option Make(double time_s, double price, vehicle::VehicleId id) {
  core::Option o;
  o.vehicle = id;
  o.pickup_time_s = time_s;
  o.pickup_distance = time_s;  // unit speed
  o.price = price;
  return o;
}

class ChoiceTest : public ::testing::Test {
 protected:
  ChoiceTest() : rng_(9) {
    options_.push_back(Make(60.0, 10.0, 0));   // fast, expensive
    options_.push_back(Make(300.0, 4.0, 1));   // slow, cheap
    options_.push_back(Make(120.0, 7.0, 2));   // middle
  }
  std::vector<core::Option> options_;
  util::Rng rng_;
};

TEST_F(ChoiceTest, EarliestPickup) {
  ChoiceContext ctx;
  ctx.model = RiderChoiceModel::kEarliestPickup;
  EXPECT_EQ(ChooseOptionIndex(options_, ctx, rng_), 0u);
}

TEST_F(ChoiceTest, Cheapest) {
  ChoiceContext ctx;
  ctx.model = RiderChoiceModel::kCheapest;
  EXPECT_EQ(ChooseOptionIndex(options_, ctx, rng_), 1u);
}

TEST_F(ChoiceTest, WeightedUtilityTradesOff) {
  ChoiceContext ctx;
  ctx.model = RiderChoiceModel::kWeightedUtility;
  ctx.now_s = 0.0;
  // Very high value of time: behaves like earliest pickup.
  ctx.value_of_time = 100.0;
  EXPECT_EQ(ChooseOptionIndex(options_, ctx, rng_), 0u);
  // Zero value of time: behaves like cheapest.
  ctx.value_of_time = 0.0;
  EXPECT_EQ(ChooseOptionIndex(options_, ctx, rng_), 1u);
  // Moderate: the middle option wins (7 + 0.02*120 = 9.4 vs 11.2 / 10).
  ctx.value_of_time = 0.02;
  EXPECT_EQ(ChooseOptionIndex(options_, ctx, rng_), 2u);
}

TEST_F(ChoiceTest, RandomCoversAllOptions) {
  ChoiceContext ctx;
  ctx.model = RiderChoiceModel::kRandom;
  bool seen[3] = {false, false, false};
  for (int i = 0; i < 200; ++i) {
    const size_t pick = ChooseOptionIndex(options_, ctx, rng_);
    ASSERT_LT(pick, 3u);
    seen[pick] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST_F(ChoiceTest, SingleOptionAlwaysChosen) {
  std::vector<core::Option> one = {Make(10.0, 1.0, 5)};
  for (const RiderChoiceModel model :
       {RiderChoiceModel::kEarliestPickup, RiderChoiceModel::kCheapest,
        RiderChoiceModel::kWeightedUtility, RiderChoiceModel::kRandom}) {
    ChoiceContext ctx;
    ctx.model = model;
    EXPECT_EQ(ChooseOptionIndex(one, ctx, rng_), 0u);
  }
}

TEST(ChoiceNameTest, AllNamed) {
  for (const RiderChoiceModel model :
       {RiderChoiceModel::kEarliestPickup, RiderChoiceModel::kCheapest,
        RiderChoiceModel::kWeightedUtility, RiderChoiceModel::kRandom}) {
    EXPECT_STRNE(RiderChoiceModelName(model), "unknown");
  }
}

}  // namespace
}  // namespace ptrider::sim
