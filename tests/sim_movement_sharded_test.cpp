// The region-sharded vehicle index's headline guarantee: the
// SimulationReport is item-for-item identical across index shard counts
// — for every move_jobs setting, dispatch mode and seed. Shards only
// decompose the deferred commit-side re-registration into concurrent
// per-region applications; the per-cell operation sequences are
// shard-independent, so the lists (and everything matched off them) are
// bit-identical (DESIGN.md section 10). Determinism is proven here, not
// asserted — and the TSan CI job runs this file to certify the
// concurrent shard application is race-free.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "roadnet/graph_generator.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace ptrider::sim {
namespace {

/// Field-by-field semantic equality of two simulation reports.
/// Wall-clock aggregates and cache-state-dependent effort counters are
/// excluded; everything a rider, operator or evaluation plot observes
/// must be byte-identical.
void ExpectReportsIdentical(const SimulationReport& a,
                            const SimulationReport& b) {
  EXPECT_EQ(a.requests_submitted, b.requests_submitted);
  EXPECT_EQ(a.requests_assigned, b.requests_assigned);
  EXPECT_EQ(a.requests_unserved, b.requests_unserved);
  EXPECT_EQ(a.requests_declined, b.requests_declined);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.requests_shared, b.requests_shared);
  EXPECT_EQ(a.revenue_total, b.revenue_total);
  EXPECT_EQ(a.fleet_total_distance_m, b.fleet_total_distance_m);
  EXPECT_EQ(a.fleet_occupied_distance_m, b.fleet_occupied_distance_m);
  EXPECT_EQ(a.fleet_shared_distance_m, b.fleet_shared_distance_m);
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);

  const auto expect_stats_eq = [](const util::RunningStats& x,
                                  const util::RunningStats& y,
                                  const char* name) {
    SCOPED_TRACE(name);
    EXPECT_EQ(x.count(), y.count());
    EXPECT_EQ(x.sum(), y.sum());
    EXPECT_EQ(x.mean(), y.mean());
    EXPECT_EQ(x.min(), y.min());
    EXPECT_EQ(x.max(), y.max());
  };
  expect_stats_eq(a.submit_delay_s, b.submit_delay_s, "submit_delay_s");
  expect_stats_eq(a.options_per_request, b.options_per_request,
                  "options_per_request");
  expect_stats_eq(a.vehicles_examined, b.vehicles_examined,
                  "vehicles_examined");
  expect_stats_eq(a.pickup_wait_s, b.pickup_wait_s, "pickup_wait_s");
  expect_stats_eq(a.detour_ratio, b.detour_ratio, "detour_ratio");
  expect_stats_eq(a.quoted_price, b.quoted_price, "quoted_price");
  expect_stats_eq(a.price_over_floor, b.price_over_floor,
                  "price_over_floor");
  expect_stats_eq(a.trip_overrun_m, b.trip_overrun_m, "trip_overrun_m");
}

struct City {
  roadnet::RoadNetwork graph;
  std::vector<Trip> trips;
};

City MakeCity(uint64_t trip_seed) {
  City city;
  roadnet::CityGridOptions gopts;
  gopts.rows = 12;
  gopts.cols = 12;
  gopts.seed = 23;
  auto g = roadnet::MakeCityGrid(gopts);
  EXPECT_TRUE(g.ok());
  city.graph = std::move(g).value();

  HotspotWorkloadOptions wopts;
  wopts.num_trips = 90;
  wopts.duration_s = 1300.0;
  wopts.seed = trip_seed;
  auto trips = GenerateHotspotTrips(city.graph, wopts);
  EXPECT_TRUE(trips.ok());
  city.trips = std::move(trips).value();
  return city;
}

SimulationReport RunCity(const City& city, int index_shards,
                         int move_jobs, int dispatch_threads,
                         double batch_window_s, uint64_t seed) {
  core::Config cfg;
  cfg.matcher = core::MatcherAlgorithm::kDualSide;
  cfg.vehicle_capacity = 3;
  cfg.default_max_wait_s = 330.0;
  cfg.default_service_sigma = 0.45;
  cfg.max_planned_pickup_s = 600.0;
  // Surge pricing keeps the demand window load-bearing across modes.
  cfg.pricing_policy = core::PricingPolicyKind::kSurge;
  cfg.surge_baseline_rate_per_min = 1.0;
  cfg.index_shards = index_shards;
  cfg.dispatch_threads = dispatch_threads;
  auto sys = core::PTRider::Create(city.graph, cfg);
  EXPECT_TRUE(sys.ok());
  EXPECT_TRUE((*sys)->InitFleetUniform(26, seed).ok());

  SimulatorOptions sopts;
  sopts.seed = seed;
  sopts.batch_window_s = batch_window_s;
  sopts.move_jobs = move_jobs;
  sopts.choice.model = RiderChoiceModel::kWeightedUtility;
  sopts.choice.accept_price_over_floor = 3.0;
  Simulator sim(**sys, sopts);
  auto report = sim.Run(city.trips);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

// --- The determinism matrix: shards x move_jobs x dispatch x seeds ----------

class ShardedIndexDeterminismTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(ShardedIndexDeterminismTest, ReportIdenticalAcrossShardCounts) {
  const auto [dispatch_threads, seed] = GetParam();
  const City city = MakeCity(seed + 211);
  const SimulationReport reference =
      RunCity(city, /*index_shards=*/1, /*move_jobs=*/1, dispatch_threads,
              /*batch_window_s=*/4.0, seed);
  ASSERT_GT(reference.requests_assigned, 20);
  ASSERT_GT(reference.requests_completed, 5);
  for (const int shards : {2, 4}) {
    for (const int move_jobs : {1, 4}) {
      SCOPED_TRACE("shards " + std::to_string(shards) + " move_jobs " +
                   std::to_string(move_jobs));
      ExpectReportsIdentical(reference,
                             RunCity(city, shards, move_jobs,
                                     dispatch_threads,
                                     /*batch_window_s=*/4.0, seed));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DispatchModesAndSeeds, ShardedIndexDeterminismTest,
    ::testing::Combine(
        // Sequential BatchDispatcher and the 2-thread ParallelDispatcher.
        ::testing::Values(0, 2), ::testing::Values<uint64_t>(3, 17)));

// Per-request submission (no batch window) runs the exact same deferred
// movement reindex; shard counts cannot move that report either.
TEST(ShardedIndexDeterminismTest, PerRequestModeIdenticalAcrossShards) {
  const City city = MakeCity(57);
  const SimulationReport reference =
      RunCity(city, /*index_shards=*/1, /*move_jobs=*/1,
              /*dispatch_threads=*/0, /*batch_window_s=*/0.0, 5);
  ASSERT_GT(reference.requests_assigned, 20);
  ExpectReportsIdentical(
      reference, RunCity(city, /*index_shards=*/4, /*move_jobs=*/4,
                         /*dispatch_threads=*/0, /*batch_window_s=*/0.0,
                         5));
}

}  // namespace
}  // namespace ptrider::sim
