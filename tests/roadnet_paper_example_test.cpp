#include "roadnet/paper_example.h"

#include <gtest/gtest.h>

#include "roadnet/dijkstra.h"

namespace ptrider::roadnet {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : ex_(MakePaperExampleNetwork()), engine_(ex_.graph) {}

  Weight D(int a, int b) { return engine_.Distance(ex_.v(a), ex_.v(b)); }

  PaperExampleNetwork ex_;
  DijkstraEngine engine_;
};

TEST_F(PaperExampleTest, HasSeventeenVertices) {
  EXPECT_EQ(ex_.graph.NumVertices(), 17u);
  EXPECT_TRUE(ex_.graph.GeometricLowerBoundValid());
}

TEST_F(PaperExampleTest, CalibratedDistancesMatchSection2) {
  // Every number the running text of Section 2 relies on.
  EXPECT_DOUBLE_EQ(D(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(D(2, 12), 8.0);
  EXPECT_DOUBLE_EQ(D(2, 16), 12.0);   // via v12: detour-free insertion
  EXPECT_DOUBLE_EQ(D(12, 16), 4.0);
  EXPECT_DOUBLE_EQ(D(16, 17), 3.0);
  EXPECT_DOUBLE_EQ(D(12, 17), 7.0);   // via v16
  EXPECT_DOUBLE_EQ(D(13, 12), 8.0);
  // c1's dist_pt of 14 is the distance along the schedule v1->v2->v12
  // (6 + 8), not the direct shortest path.
  EXPECT_DOUBLE_EQ(D(1, 2) + D(2, 12), 14.0);
  EXPECT_DOUBLE_EQ(D(1, 12), 13.5);
}

TEST_F(PaperExampleTest, V12OnShortestPathV2ToV16) {
  EXPECT_DOUBLE_EQ(D(2, 12) + D(12, 16), D(2, 16));
}

TEST_F(PaperExampleTest, V16OnShortestPathV12ToV17) {
  EXPECT_DOUBLE_EQ(D(12, 16) + D(16, 17), D(12, 17));
}

TEST_F(PaperExampleTest, WorkedExampleArithmetic) {
  // tr1 = <v1, v2, v16>, tr2 = <v1, v2, v12, v16, v17>.
  const Weight tr1 = D(1, 2) + D(2, 16);
  const Weight tr2 = D(1, 2) + D(2, 12) + D(12, 16) + D(16, 17);
  EXPECT_DOUBLE_EQ(tr1, 18.0);
  EXPECT_DOUBLE_EQ(tr2, 21.0);
  // Definition 3 with f_2 = 0.4: price of R2 on c1 is 4.
  const double f2 = 0.3 + (2 - 1) * 0.1;
  EXPECT_DOUBLE_EQ(f2 * (tr2 - tr1 + D(12, 17)), 4.0);
  // Empty vehicle c2 at v13: price 0.4 * (8 + 7 + 7) = 8.8.
  EXPECT_DOUBLE_EQ(f2 * (D(13, 12) + 2 * D(12, 17)), 8.8);
}

TEST_F(PaperExampleTest, ConnectedNetwork) {
  engine_.RunFrom(ex_.v(1));
  for (int i = 1; i <= 17; ++i) {
    EXPECT_TRUE(engine_.Reached(ex_.v(i))) << "v" << i;
  }
}

}  // namespace
}  // namespace ptrider::roadnet
