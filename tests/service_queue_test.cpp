#include "service/mpsc_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace ptrider::service {
namespace {

TEST(BoundedMpscQueueTest, FifoUnderSingleProducer) {
  BoundedMpscQueue<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.TryPush(i));
  std::vector<int> out;
  EXPECT_EQ(q.DrainTo(out), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedMpscQueueTest, RejectsWhenFull) {
  BoundedMpscQueue<int> q(3);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_FALSE(q.TryPush(4));
  EXPECT_FALSE(q.TryPush(5));
  EXPECT_EQ(q.pushed(), 3u);
  EXPECT_EQ(q.rejected(), 2u);
  EXPECT_EQ(q.max_depth(), 3u);

  // Draining frees capacity again.
  std::vector<int> out;
  q.DrainTo(out);
  EXPECT_TRUE(q.TryPush(6));
  EXPECT_EQ(q.pushed(), 4u);
}

TEST(BoundedMpscQueueTest, ZeroCapacityClampsToOne) {
  BoundedMpscQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));
}

TEST(BoundedMpscQueueTest, CloseRejectsFurtherPushes) {
  BoundedMpscQueue<int> q(8);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.closed());
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.TryPush(2));
  EXPECT_EQ(q.rejected(), 1u);
  // Already-queued items still drain after close.
  std::vector<int> out;
  EXPECT_EQ(q.DrainTo(out), 1u);
  EXPECT_EQ(out[0], 1);
}

TEST(BoundedMpscQueueTest, DrainAppendsToExistingVector) {
  BoundedMpscQueue<int> q(8);
  q.TryPush(2);
  q.TryPush(3);
  std::vector<int> out = {1};
  q.DrainTo(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 3);
}

// Degenerate capacity: a capacity-1 queue alternates exactly one accept
// per drain, forever, with no off-by-one at the boundary.
TEST(BoundedMpscQueueTest, CapacityOneAlternatesPushAndDrain) {
  BoundedMpscQueue<int> q(1);
  std::vector<int> out;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.TryPush(i));
    EXPECT_FALSE(q.TryPush(100 + i));  // burst at capacity: suffix rejected
    EXPECT_EQ(q.DrainTo(out), 1u);
  }
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
  EXPECT_EQ(q.pushed(), 5u);
  EXPECT_EQ(q.rejected(), 5u);
  EXPECT_EQ(q.max_depth(), 1u);
}

// A burst twice the capacity: exactly the first `capacity` items are
// accepted (rejection hits the suffix, never punches holes in the
// prefix), and the drain preserves their order.
TEST(BoundedMpscQueueTest, BurstAtCapacityRejectsSuffixInOrder) {
  BoundedMpscQueue<int> q(4);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(q.TryPush(i), i < 4);
  EXPECT_EQ(q.pushed(), 4u);
  EXPECT_EQ(q.rejected(), 4u);
  std::vector<int> out;
  EXPECT_EQ(q.DrainTo(out), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

// The capacity-squeeze fault hook: a limit below capacity clamps
// admission, a limit above it is a no-op, and 0 restores the configured
// capacity. Items already queued above the squeeze survive and drain.
TEST(BoundedMpscQueueTest, SetCapacityLimitSqueezesAndRestores) {
  BoundedMpscQueue<int> q(8);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  q.SetCapacityLimit(2);  // already above the limit: nothing evicted...
  EXPECT_EQ(q.size(), 4u);
  EXPECT_FALSE(q.TryPush(99));  // ...but no further admission
  std::vector<int> out;
  q.DrainTo(out);
  EXPECT_EQ(out.size(), 4u);

  EXPECT_TRUE(q.TryPush(10));
  EXPECT_TRUE(q.TryPush(11));
  EXPECT_FALSE(q.TryPush(12));  // squeezed to 2
  q.SetCapacityLimit(100);      // above capacity: clamps to capacity 8
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(q.TryPush(20 + i));
  EXPECT_FALSE(q.TryPush(99));
  out.clear();
  EXPECT_EQ(q.DrainTo(out), 8u);

  q.SetCapacityLimit(1);
  EXPECT_TRUE(q.TryPush(30));
  EXPECT_FALSE(q.TryPush(31));
  q.SetCapacityLimit(0);  // restore
  for (int i = 0; i < 7; ++i) EXPECT_TRUE(q.TryPush(40 + i));
  EXPECT_FALSE(q.TryPush(99));
}

// Close during concurrent production: after Close every in-flight and
// subsequent TryPush is rejected, already-accepted items all drain, and
// pushed + rejected still balances. Runs under TSan in CI.
TEST(BoundedMpscQueueTest, DrainAfterCloseUnderConcurrentProducers) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 1000;
  BoundedMpscQueue<int> q(32);
  std::vector<uint64_t> accepted(kProducers, 0);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &accepted, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.TryPush(p * kPerProducer + i)) ++accepted[static_cast<size_t>(p)];
        if (i == kPerProducer / 2 && p == 0) q.Close();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_TRUE(q.closed());
  std::vector<int> out;
  q.DrainTo(out);  // post-close drain still yields everything accepted
  uint64_t total_accepted = 0;
  for (uint64_t a : accepted) total_accepted += a;
  EXPECT_EQ(out.size(), total_accepted);
  EXPECT_EQ(q.pushed(), total_accepted);
  EXPECT_EQ(q.pushed() + q.rejected(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_FALSE(q.TryPush(-1));
  EXPECT_EQ(q.size(), 0u);
}

// Multi-producer pressure with a concurrent drainer: every accepted item
// comes out exactly once, per-producer order is preserved, and the
// accepted + rejected accounting matches what producers observed. Run
// under TSan in CI (the `service` job regex).
TEST(BoundedMpscQueueTest, MultiProducerAccounting) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  BoundedMpscQueue<int> q(64);
  std::vector<uint64_t> accepted(kProducers, 0);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &accepted, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Encode (producer, sequence) so the consumer can check
        // per-producer FIFO.
        if (q.TryPush(p * kPerProducer + i)) ++accepted[static_cast<size_t>(p)];
      }
    });
  }

  std::vector<int> out;
  std::thread consumer([&q, &out] {
    while (!q.closed() || q.size() > 0) {
      q.DrainTo(out);
      std::this_thread::yield();
    }
    q.DrainTo(out);
  });
  for (std::thread& t : producers) t.join();
  q.Close();
  consumer.join();

  uint64_t total_accepted = 0;
  for (uint64_t a : accepted) total_accepted += a;
  EXPECT_EQ(out.size(), total_accepted);
  EXPECT_EQ(q.pushed(), total_accepted);
  EXPECT_EQ(q.pushed() + q.rejected(),
            static_cast<uint64_t>(kProducers) * kPerProducer);

  // Per-producer FIFO: each producer's surviving sequence numbers appear
  // in increasing order.
  std::vector<int> last(kProducers, -1);
  for (int v : out) {
    const int p = v / kPerProducer;
    const int seq = v % kPerProducer;
    EXPECT_GT(seq, last[static_cast<size_t>(p)]);
    last[static_cast<size_t>(p)] = seq;
  }
}

}  // namespace
}  // namespace ptrider::service
