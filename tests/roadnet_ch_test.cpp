// Contraction-hierarchy correctness (DESIGN.md section 7). The load-
// bearing property: CH distances are BIT-identical to DijkstraEngine —
// the query unpacks its up-down path into original edges and re-sums
// them in path order, so the acceptance tests here use exact EXPECT_EQ
// on doubles, not tolerances. Identical distances are what make the
// whole simulation invariant under Config::sp_algorithm.

#include "roadnet/ch.h"

#include <gtest/gtest.h>

#include "roadnet/dijkstra.h"
#include "roadnet/distance_oracle.h"
#include "roadnet/graph_generator.h"
#include "roadnet/paper_example.h"
#include "util/random.h"

namespace ptrider::roadnet {
namespace {

void ExpectBitIdentical(const RoadNetwork& g, int pairs, uint64_t seed,
                        const char* label) {
  const CHIndex index = CHIndex::Build(g);
  CHQuery ch(index);
  DijkstraEngine dij(g);
  util::Rng rng(seed);
  const auto random_vertex = [&] {
    return static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
  };
  for (int i = 0; i < pairs; ++i) {
    const VertexId u = random_vertex();
    const VertexId v = random_vertex();
    const Weight expected = dij.Distance(u, v);
    EXPECT_EQ(ch.Distance(u, v), expected)
        << label << ": v" << u << " -> v" << v;
  }
}

TEST(CHPropertyTest, BitIdenticalToDijkstraOnCityGrids) {
  for (const uint64_t graph_seed : {1ULL, 9ULL, 20090529ULL}) {
    CityGridOptions opts;
    opts.rows = 11;
    opts.cols = 13;
    opts.seed = graph_seed;
    auto g = MakeCityGrid(opts);
    ASSERT_TRUE(g.ok());
    ExpectBitIdentical(*g, 250, /*seed=*/graph_seed * 7 + 3, "city");
  }
}

TEST(CHPropertyTest, BitIdenticalToDijkstraOnRingCity) {
  RingCityOptions opts;
  opts.rings = 7;
  opts.spokes = 12;
  opts.seed = 5;
  auto g = MakeRingCity(opts);
  ASSERT_TRUE(g.ok());
  ExpectBitIdentical(*g, 250, /*seed=*/17, "ring");
}

TEST(CHPropertyTest, PaperExampleKnownDistances) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  const CHIndex index = CHIndex::Build(ex.graph);
  CHQuery ch(index);
  DijkstraEngine dij(ex.graph);
  for (int a = 1; a <= 17; ++a) {
    for (int b = 1; b <= 17; ++b) {
      EXPECT_EQ(ch.Distance(ex.v(a), ex.v(b)),
                dij.Distance(ex.v(a), ex.v(b)))
          << "v" << a << " -> v" << b;
    }
  }
  EXPECT_DOUBLE_EQ(ch.Distance(ex.v(2), ex.v(16)), 12.0);
}

TEST(CHPropertyTest, DirectedAsymmetricGraph) {
  // One-way streets: CH must respect edge direction, not assume the
  // symmetric networks the generators produce.
  GraphBuilder b;
  const VertexId a = b.AddVertex({0, 0});
  const VertexId c = b.AddVertex({1, 0});
  const VertexId d = b.AddVertex({2, 0});
  const VertexId e = b.AddVertex({1, 1});
  ASSERT_TRUE(b.AddEdge(a, c, 1.0).ok());
  ASSERT_TRUE(b.AddEdge(c, d, 1.0).ok());
  ASSERT_TRUE(b.AddEdge(d, e, 1.5).ok());
  ASSERT_TRUE(b.AddEdge(e, a, 1.5).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const CHIndex index = CHIndex::Build(*g);
  CHQuery ch(index);
  DijkstraEngine dij(*g);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 0; v < 4; ++v) {
      EXPECT_EQ(ch.Distance(u, v), dij.Distance(u, v))
          << u << " -> " << v;
    }
  }
  // The cycle makes a -> c cheap but c -> a the long way round.
  EXPECT_DOUBLE_EQ(ch.Distance(a, c), 1.0);
  EXPECT_DOUBLE_EQ(ch.Distance(c, a), 4.0);
}

TEST(CHPropertyTest, DisconnectedPairsAreInfinite) {
  GraphBuilder b;
  const VertexId a = b.AddVertex({0, 0});
  const VertexId c = b.AddVertex({1, 0});
  const VertexId d = b.AddVertex({9, 9});
  const VertexId e = b.AddVertex({10, 9});
  ASSERT_TRUE(b.AddUndirectedEdge(a, c, 1.0).ok());
  ASSERT_TRUE(b.AddUndirectedEdge(d, e, 1.0).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const CHIndex index = CHIndex::Build(*g);
  CHQuery ch(index);
  EXPECT_EQ(ch.Distance(a, d), kInfWeight);
  EXPECT_EQ(ch.Distance(d, a), kInfWeight);
  EXPECT_DOUBLE_EQ(ch.Distance(a, c), 1.0);
  EXPECT_DOUBLE_EQ(ch.Distance(d, e), 1.0);
}

TEST(CHPropertyTest, TrivialAndInvalidQueries) {
  CityGridOptions opts;
  opts.rows = 6;
  opts.cols = 6;
  auto g = MakeCityGrid(opts);
  ASSERT_TRUE(g.ok());
  const CHIndex index = CHIndex::Build(*g);
  CHQuery ch(index);
  EXPECT_DOUBLE_EQ(ch.Distance(3, 3), 0.0);
  EXPECT_EQ(ch.Distance(-1, 3), kInfWeight);
  EXPECT_EQ(ch.Distance(3, static_cast<VertexId>(g->NumVertices())),
            kInfWeight);
}

TEST(CHIndexTest, BuildIsDeterministicAndRanksArePermutation) {
  CityGridOptions opts;
  opts.rows = 9;
  opts.cols = 9;
  opts.seed = 4;
  auto g = MakeCityGrid(opts);
  ASSERT_TRUE(g.ok());
  const CHIndex a = CHIndex::Build(*g);
  const CHIndex b = CHIndex::Build(*g);
  ASSERT_EQ(a.NumVertices(), g->NumVertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_shortcuts(), b.num_shortcuts());
  std::vector<char> seen(a.NumVertices(), 0);
  for (VertexId v = 0; v < static_cast<VertexId>(a.NumVertices()); ++v) {
    EXPECT_EQ(a.Rank(v), b.Rank(v));
    ASSERT_LT(a.Rank(v), a.NumVertices());
    EXPECT_FALSE(seen[a.Rank(v)]) << "duplicate rank";
    seen[a.Rank(v)] = 1;
    // The hierarchy property: stored edges only point upward.
    for (const CHIndex::Edge& e : a.UpEdges(v)) {
      EXPECT_GT(a.Rank(e.other), a.Rank(v));
    }
    for (const CHIndex::Edge& e : a.DownEdges(v)) {
      EXPECT_GT(a.Rank(e.other), a.Rank(v));
    }
  }
  EXPECT_GT(a.MemoryBytes(), 0u);
  EXPECT_GE(a.build_seconds(), 0.0);
}

TEST(CHQueryTest, SearchIsFarSmallerThanFullDijkstra) {
  CityGridOptions opts;
  opts.rows = 30;
  opts.cols = 30;
  opts.seed = 11;
  auto g = MakeCityGrid(opts);
  ASSERT_TRUE(g.ok());
  const CHIndex index = CHIndex::Build(*g);
  CHQuery ch(index);
  util::Rng rng(23);
  const int kQueries = 100;
  for (int i = 0; i < kQueries; ++i) {
    const auto u = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g->NumVertices()) - 1));
    const auto v = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g->NumVertices()) - 1));
    (void)ch.Distance(u, v);
  }
  EXPECT_GT(ch.total_pops(), 0u);
  EXPECT_GE(ch.total_settled(), 0u);
  // The point of the hierarchy: the average query settles a small
  // fraction of the graph (a full Dijkstra settles ~half of it).
  EXPECT_LT(ch.total_settled() / kQueries, g->NumVertices() / 4);
  ch.ResetStats();
  EXPECT_EQ(ch.total_pops(), 0u);
}

// Checks that `path` is a real walk in `g` from u to v whose edges
// re-sum (left to right, like DijkstraEngine) to exactly `distance`.
void ExpectValidPath(const RoadNetwork& g, const std::vector<VertexId>& path,
                     VertexId u, VertexId v, Weight distance) {
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), u);
  EXPECT_EQ(path.back(), v);
  Weight sum = 0.0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Weight w = g.EdgeWeight(path[i], path[i + 1]);
    ASSERT_NE(w, kInfWeight)
        << "path uses nonexistent edge " << path[i] << " -> "
        << path[i + 1];
    sum += w;
  }
  EXPECT_EQ(sum, distance);
}

TEST(CHPathTest, UnpackedPathsMatchDijkstraBitExactly) {
  // DistanceWithPath expands every shortcut into original edges; the
  // expanded walk must re-sum to the Dijkstra distance with zero ULP
  // error (that re-summation IS the returned distance).
  CityGridOptions opts;
  opts.rows = 13;
  opts.cols = 12;
  opts.seed = 271;
  auto g = MakeCityGrid(opts);
  ASSERT_TRUE(g.ok());
  const CHIndex index = CHIndex::Build(*g);
  CHQuery ch(index);
  DijkstraEngine dij(*g);
  util::Rng rng(31);
  for (int i = 0; i < 150; ++i) {
    const auto u = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g->NumVertices()) - 1));
    const auto v = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g->NumVertices()) - 1));
    std::vector<VertexId> path;
    const Weight d = ch.DistanceWithPath(u, v, path);
    EXPECT_EQ(d, dij.Distance(u, v)) << u << " -> " << v;
    ExpectValidPath(*g, path, u, v, d);
  }
  // Trivial query: a single-vertex path at distance zero.
  std::vector<VertexId> self;
  EXPECT_EQ(ch.DistanceWithPath(3, 3, self), 0.0);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0], 3);
}

TEST(CHPathTest, OracleShortestPathServedByCh) {
  // Under sp_algorithm=ch the oracle's ShortestPath is answered by the
  // hierarchy itself (shortcut unpacking), not by an A* fallback — so
  // it must work, and agree with Dijkstra, on a network whose geometric
  // lower bound is unusable (all-origin coordinates disable A*'s
  // heuristic entirely).
  GraphBuilder builder;
  for (int i = 0; i < 6; ++i) builder.AddVertex({0.0, 0.0});
  ASSERT_TRUE(builder.AddUndirectedEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(builder.AddUndirectedEdge(1, 2, 2.5).ok());
  ASSERT_TRUE(builder.AddUndirectedEdge(2, 3, 1.0).ok());
  ASSERT_TRUE(builder.AddUndirectedEdge(0, 4, 1.5).ok());
  ASSERT_TRUE(builder.AddUndirectedEdge(4, 3, 5.5).ok());
  // Vertex 5 is isolated: no path to or from it.
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());

  DistanceOracleOptions oopts;
  oopts.algorithm = SpAlgorithm::kContractionHierarchy;
  DistanceOracle oracle(*g, oopts);
  DijkstraEngine dij(*g);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = 0; v < 5; ++v) {
      auto path = oracle.ShortestPath(u, v);
      ASSERT_TRUE(path.ok()) << path.status().ToString();
      ExpectValidPath(*g, *path, u, v, dij.Distance(u, v));
    }
  }
  // Unreachable pairs surface as NotFound, same as every other engine.
  EXPECT_FALSE(oracle.ShortestPath(0, 5).ok());
}

}  // namespace
}  // namespace ptrider::roadnet
