// Thread-safety of util::logging: concurrent workers must emit whole
// lines — never interleaved fragments. The capture sink receives lines
// under the logging mutex; the TSan CI job runs this file too.

#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ptrider::util {
namespace {

Mutex g_capture_mu;
std::vector<std::string> g_captured GUARDED_BY(g_capture_mu);

void CaptureSink(LogLevel, const char* line) {
  const MutexLock lock(g_capture_mu);
  g_captured.emplace_back(line);
}

class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() : old_level_(GetLogLevel()) {
    {
      const MutexLock lock(g_capture_mu);
      g_captured.clear();
    }
    SetLogLevel(LogLevel::kDebug);
    old_sink_ = SetLogSink(&CaptureSink);
  }
  ~LoggingTest() override {
    SetLogSink(old_sink_);
    SetLogLevel(old_level_);
  }

  LogLevel old_level_;
  LogSink old_sink_ = nullptr;
};

TEST_F(LoggingTest, EmitsOneCompleteLinePerMessage) {
  PTRIDER_LOG(kInfo) << "hello " << 42;
  const MutexLock lock(g_capture_mu);
  ASSERT_EQ(g_captured.size(), 1u);
  EXPECT_NE(g_captured[0].find("hello 42\n"), std::string::npos);
  EXPECT_NE(g_captured[0].find("[I "), std::string::npos);
}

TEST_F(LoggingTest, RespectsMinimumLevel) {
  SetLogLevel(LogLevel::kError);
  PTRIDER_LOG(kWarning) << "dropped";
  PTRIDER_LOG(kError) << "kept";
  const MutexLock lock(g_capture_mu);
  ASSERT_EQ(g_captured.size(), 1u);
  EXPECT_NE(g_captured[0].find("kept"), std::string::npos);
}

TEST_F(LoggingTest, ConcurrentWritersNeverInterleave) {
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        PTRIDER_LOG(kInfo) << "worker=" << t << " line=" << i << " end";
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const MutexLock lock(g_capture_mu);
  ASSERT_EQ(g_captured.size(),
            static_cast<size_t>(kThreads) * kLines);
  for (const std::string& line : g_captured) {
    // Every captured line is exactly one message: one prefix, the full
    // worker=X line=Y payload, one trailing newline.
    EXPECT_EQ(line.find("[I "), 0u) << line;
    EXPECT_NE(line.find("worker="), std::string::npos) << line;
    EXPECT_NE(line.find(" end\n"), std::string::npos) << line;
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
  }
}

}  // namespace
}  // namespace ptrider::util
