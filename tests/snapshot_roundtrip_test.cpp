// Versioned mmap snapshot (src/snapshot/): a written-then-loaded
// snapshot must be indistinguishable from the in-memory structures it
// serialized — structurally (arrays, scalars), behaviorally (query
// bit-identity, whole-SimulationReport equality across seeds) — and the
// loader must refuse corrupted, truncated and foreign-version files
// with a clean util::Status instead of undefined behavior.

#include "snapshot/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "roadnet/ch.h"
#include "roadnet/dijkstra.h"
#include "roadnet/graph_generator.h"
#include "roadnet/grid_index.h"
#include "sim/simulator.h"
#include "sim/workload.h"
#include "snapshot/format.h"
#include "snapshot/system.h"
#include "util/random.h"

namespace ptrider::snapshot {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// The grid keeps a pointer to the graph it was built over, so the graph
// must live at a stable heap address before the indexes are built.
struct Built {
  std::optional<roadnet::RoadNetwork> graph;
  std::optional<roadnet::GridIndex> grid;
  std::optional<roadnet::CHIndex> ch;
};

std::unique_ptr<Built> BuildCity(uint64_t seed,
                                 roadnet::GridIndexOptions gridopts) {
  roadnet::CityGridOptions city;
  city.rows = 14;
  city.cols = 11;
  city.seed = seed;
  auto graph = roadnet::MakeCityGrid(city);
  EXPECT_TRUE(graph.ok());
  auto b = std::make_unique<Built>();
  b->graph = std::move(*graph);
  auto grid = roadnet::GridIndex::Build(*b->graph, gridopts);
  EXPECT_TRUE(grid.ok());
  b->grid = std::move(*grid);
  b->ch = roadnet::CHIndex::Build(*b->graph);
  return b;
}

std::string WriteTempSnapshot(const Built& b, const char* name) {
  const std::string path = TempPath(name);
  const util::Status written =
      WriteSnapshot(*b.graph, *b.grid, *b.ch, path);
  EXPECT_TRUE(written.ok()) << written.ToString();
  return path;
}

TEST(SnapshotRoundtripTest, StructuresSurviveExactly) {
  roadnet::GridIndexOptions gridopts;
  gridopts.cells_x = 5;
  gridopts.cells_y = 5;
  const auto b = BuildCity(/*seed=*/909, gridopts);
  const std::string path = WriteTempSnapshot(*b, "roundtrip.snap");

  auto loaded = Snapshot::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->info().version, kFormatVersion);
  EXPECT_EQ(loaded->info().num_vertices, b->graph->NumVertices());
  EXPECT_EQ(loaded->info().num_edges, b->graph->NumEdges());

  // Graph: every coordinate and every CSR adjacency list, bit for bit.
  const roadnet::RoadNetwork& g = loaded->graph();
  ASSERT_EQ(g.NumVertices(), b->graph->NumVertices());
  ASSERT_EQ(g.NumEdges(), b->graph->NumEdges());
  EXPECT_EQ(g.GeometricLowerBoundValid(),
            b->graph->GeometricLowerBoundValid());
  EXPECT_EQ(g.bounds().min_x, b->graph->bounds().min_x);
  EXPECT_EQ(g.bounds().max_y, b->graph->bounds().max_y);
  for (roadnet::VertexId v = 0;
       v < static_cast<roadnet::VertexId>(g.NumVertices()); ++v) {
    EXPECT_EQ(g.Coord(v).x, b->graph->Coord(v).x);
    EXPECT_EQ(g.Coord(v).y, b->graph->Coord(v).y);
    const auto got = g.OutEdges(v);
    const auto want = b->graph->OutEdges(v);
    ASSERT_EQ(got.size(), want.size()) << "vertex " << v;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].to, want[i].to);
      EXPECT_EQ(got[i].weight, want[i].weight);
    }
  }

  // Grid: same resolution, same per-vertex cells and bounds, and the
  // DebugString (which folds in the build stats) matches verbatim.
  const roadnet::GridIndex& grid = loaded->grid();
  EXPECT_EQ(grid.cells_x(), b->grid->cells_x());
  EXPECT_EQ(grid.cells_y(), b->grid->cells_y());
  EXPECT_EQ(grid.DebugString(), b->grid->DebugString());
  for (roadnet::VertexId v = 0;
       v < static_cast<roadnet::VertexId>(g.NumVertices()); ++v) {
    EXPECT_EQ(grid.CellOfVertex(v), b->grid->CellOfVertex(v));
    EXPECT_EQ(grid.VertexMinToBorder(v), b->grid->VertexMinToBorder(v));
  }
  for (roadnet::CellId a = 0; a < grid.NumCells(); a += 3) {
    for (roadnet::CellId c = 0; c < grid.NumCells(); c += 3) {
      EXPECT_EQ(grid.CellPairLowerBound(a, c),
                b->grid->CellPairLowerBound(a, c));
    }
  }

  // CH: contraction order and both search graphs.
  const std::shared_ptr<const roadnet::CHIndex> ch = loaded->ch();
  ASSERT_EQ(ch->NumVertices(), b->ch->NumVertices());
  EXPECT_EQ(ch->num_shortcuts(), b->ch->num_shortcuts());
  EXPECT_EQ(ch->num_edges(), b->ch->num_edges());
  EXPECT_EQ(ch->build_seconds(), b->ch->build_seconds());
  for (roadnet::VertexId v = 0;
       v < static_cast<roadnet::VertexId>(g.NumVertices()); ++v) {
    EXPECT_EQ(ch->Rank(v), b->ch->Rank(v));
    const auto got_up = ch->UpEdges(v);
    const auto want_up = b->ch->UpEdges(v);
    ASSERT_EQ(got_up.size(), want_up.size());
    for (size_t i = 0; i < got_up.size(); ++i) {
      EXPECT_EQ(got_up[i].other, want_up[i].other);
      EXPECT_EQ(got_up[i].weight, want_up[i].weight);
    }
    const auto got_down = ch->DownEdges(v);
    const auto want_down = b->ch->DownEdges(v);
    ASSERT_EQ(got_down.size(), want_down.size());
    for (size_t i = 0; i < got_down.size(); ++i) {
      EXPECT_EQ(got_down[i].other, want_down[i].other);
      EXPECT_EQ(got_down[i].weight, want_down[i].weight);
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotRoundtripTest, LoadedChQueriesMatchDijkstraExactly) {
  roadnet::GridIndexOptions gridopts;
  gridopts.cells_x = 4;
  gridopts.cells_y = 4;
  const auto b = BuildCity(/*seed=*/910, gridopts);
  const std::string path = WriteTempSnapshot(*b, "ch_identity.snap");
  auto loaded = Snapshot::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  roadnet::CHQuery query(*loaded->ch());
  roadnet::DijkstraEngine dijkstra(loaded->graph());
  util::Rng rng(5);
  const auto n =
      static_cast<roadnet::VertexId>(loaded->graph().NumVertices());
  for (int i = 0; i < 200; ++i) {
    const roadnet::VertexId u = rng.UniformInt(0, n - 1);
    const roadnet::VertexId v = rng.UniformInt(0, n - 1);
    EXPECT_EQ(query.Distance(u, v), dijkstra.Distance(u, v))
        << u << " -> " << v;
  }
  std::remove(path.c_str());
}

TEST(SnapshotRoundtripTest, SimulationReportIdenticalFreshVsLoaded) {
  // The acceptance bar: a simulation served from the mmap'd snapshot is
  // bit-identical to one served from freshly built structures — same
  // counts, same double-precision sums — across workload seeds.
  roadnet::GridIndexOptions gridopts;
  gridopts.cells_x = 6;
  gridopts.cells_y = 6;
  const auto b = BuildCity(/*seed=*/77, gridopts);
  const std::string path = WriteTempSnapshot(*b, "sim_identity.snap");
  auto loaded = Snapshot::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (const uint64_t workload_seed : {31ull, 1234ull}) {
    sim::HotspotWorkloadOptions wopts;
    wopts.num_trips = 80;
    wopts.duration_s = 1200.0;
    wopts.seed = workload_seed;
    auto trips = sim::GenerateHotspotTrips(*b->graph, wopts);
    ASSERT_TRUE(trips.ok());

    core::Config cfg;
    cfg.sp_algorithm = roadnet::SpAlgorithm::kContractionHierarchy;
    cfg.default_service_sigma = 0.4;

    const auto run = [&](std::unique_ptr<core::PTRider> sys) {
      EXPECT_TRUE(sys->InitFleetUniform(30, /*seed=*/4).ok());
      sim::SimulatorOptions sopts;
      sopts.seed = 12;
      sopts.choice.model = sim::RiderChoiceModel::kCheapest;
      sim::Simulator simulator(*sys, sopts);
      auto report = simulator.Run(*trips);
      EXPECT_TRUE(report.ok()) << report.status().ToString();
      return std::move(report).value();
    };

    auto fresh_sys = core::PTRider::Create(*b->graph, cfg, gridopts);
    ASSERT_TRUE(fresh_sys.ok());
    const sim::SimulationReport fresh = run(std::move(*fresh_sys));

    auto loaded_sys = CreateSystem(*loaded, cfg);
    ASSERT_TRUE(loaded_sys.ok()) << loaded_sys.status().ToString();
    const sim::SimulationReport snap = run(std::move(*loaded_sys));

    ASSERT_GT(fresh.requests_assigned, 30);
    EXPECT_EQ(snap.requests_submitted, fresh.requests_submitted);
    EXPECT_EQ(snap.requests_assigned, fresh.requests_assigned);
    EXPECT_EQ(snap.requests_unserved, fresh.requests_unserved);
    EXPECT_EQ(snap.requests_completed, fresh.requests_completed);
    EXPECT_EQ(snap.requests_shared, fresh.requests_shared);
    EXPECT_EQ(snap.fleet_total_distance_m, fresh.fleet_total_distance_m);
    EXPECT_EQ(snap.fleet_occupied_distance_m,
              fresh.fleet_occupied_distance_m);
    EXPECT_EQ(snap.fleet_shared_distance_m,
              fresh.fleet_shared_distance_m);
    EXPECT_EQ(snap.quoted_price.sum(), fresh.quoted_price.sum());
    EXPECT_EQ(snap.pickup_wait_s.sum(), fresh.pickup_wait_s.sum());
    EXPECT_EQ(snap.options_per_request.sum(),
              fresh.options_per_request.sum());
  }
  std::remove(path.c_str());
}

// --- Rejection: the loader must fail cleanly, never crash ------------------

class SnapshotRejectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    roadnet::GridIndexOptions gridopts;
    gridopts.cells_x = 3;
    gridopts.cells_y = 3;
    const auto b = BuildCity(/*seed=*/911, gridopts);
    path_ = WriteTempSnapshot(*b, "reject.snap");
    std::ifstream in(path_, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(), sizeof(FileHeader));
  }

  void TearDown() override { std::remove(path_.c_str()); }

  void Rewrite(const std::vector<char>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Expects Load to fail with `needle` somewhere in the message.
  void ExpectRejected(const char* needle) {
    auto loaded = Snapshot::Load(path_);
    ASSERT_FALSE(loaded.ok()) << "corrupt file loaded successfully";
    EXPECT_NE(loaded.status().message().find(needle), std::string::npos)
        << loaded.status().ToString();
  }

  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(SnapshotRejectionTest, PristineFileLoads) {
  EXPECT_TRUE(Snapshot::Load(path_).ok());
}

TEST_F(SnapshotRejectionTest, WrongMagic) {
  std::vector<char> bad = bytes_;
  bad[0] = 'X';
  Rewrite(bad);
  ExpectRejected("not a PTRider snapshot");
}

TEST_F(SnapshotRejectionTest, ForeignVersion) {
  std::vector<char> bad = bytes_;
  // The version field sits after magic[8] + endian (uint32). The header
  // is deliberately outside the checksummed range, so a version bump is
  // reported as a version problem, not as corruption.
  uint32_t version = 0;
  std::memcpy(&version, bad.data() + 12, sizeof(version));
  ASSERT_EQ(version, kFormatVersion);
  version = kFormatVersion + 7;
  std::memcpy(bad.data() + 12, &version, sizeof(version));
  Rewrite(bad);
  ExpectRejected("version");
}

TEST_F(SnapshotRejectionTest, TruncatedFile) {
  std::vector<char> bad = bytes_;
  bad.resize(bad.size() - 129);
  Rewrite(bad);
  ExpectRejected("truncated");
}

TEST_F(SnapshotRejectionTest, TruncatedBelowHeader) {
  std::vector<char> bad = bytes_;
  bad.resize(17);
  Rewrite(bad);
  ExpectRejected("smaller than a snapshot header");
}

TEST_F(SnapshotRejectionTest, FlippedPayloadByte) {
  std::vector<char> bad = bytes_;
  bad[bad.size() - 5] ^= 0x40;  // deep inside the last payload
  Rewrite(bad);
  ExpectRejected("checksum mismatch");
}

TEST_F(SnapshotRejectionTest, FlippedTableByte) {
  std::vector<char> bad = bytes_;
  bad[sizeof(FileHeader) + 3] ^= 0x01;  // inside the section table
  Rewrite(bad);
  ExpectRejected("checksum mismatch");
}

TEST_F(SnapshotRejectionTest, MissingFile) {
  EXPECT_FALSE(Snapshot::Load("/nonexistent/dir/city.snap").ok());
}

TEST_F(SnapshotRejectionTest, EmptyFile) {
  Rewrite({});
  EXPECT_FALSE(Snapshot::Load(path_).ok());
}

}  // namespace
}  // namespace ptrider::snapshot
