#include "core/dominance.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace ptrider::core {
namespace {

Option Make(double time, double price, vehicle::VehicleId id = 0) {
  Option o;
  o.vehicle = id;
  o.pickup_distance = time;
  o.price = price;
  return o;
}

TEST(DominanceTest, Definition4Cases) {
  // r1 dominates r2 iff (t1<=t2 && p1<p2) || (t1<t2 && p1<=p2).
  EXPECT_TRUE(Dominates(Make(1, 1), Make(2, 2)));
  EXPECT_TRUE(Dominates(Make(1, 1), Make(1, 2)));   // equal time, cheaper
  EXPECT_TRUE(Dominates(Make(1, 1), Make(2, 1)));   // earlier, equal price
  EXPECT_FALSE(Dominates(Make(1, 1), Make(1, 1)));  // full tie
  EXPECT_FALSE(Dominates(Make(1, 2), Make(2, 1)));  // trade-off
  EXPECT_FALSE(Dominates(Make(2, 1), Make(1, 2)));  // trade-off
  EXPECT_FALSE(Dominates(Make(2, 2), Make(1, 1)));  // dominated
}

TEST(DominanceTest, Irreflexive) {
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Option o = Make(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10));
    EXPECT_FALSE(Dominates(o, o));
  }
}

TEST(DominanceTest, Asymmetric) {
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const Option a = Make(rng.UniformDouble(0, 5), rng.UniformDouble(0, 5));
    const Option b = Make(rng.UniformDouble(0, 5), rng.UniformDouble(0, 5));
    EXPECT_FALSE(Dominates(a, b) && Dominates(b, a));
  }
}

TEST(DominanceTest, Transitive) {
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const Option a = Make(rng.UniformDouble(0, 3), rng.UniformDouble(0, 3));
    const Option b = Make(rng.UniformDouble(0, 3), rng.UniformDouble(0, 3));
    const Option c = Make(rng.UniformDouble(0, 3), rng.UniformDouble(0, 3));
    if (Dominates(a, b) && Dominates(b, c)) {
      EXPECT_TRUE(Dominates(a, c));
    }
  }
}

TEST(SkylineTest, KeepsTradeOffsDropsDominated) {
  Skyline sky;
  EXPECT_TRUE(sky.Add(Make(5, 5)));
  EXPECT_TRUE(sky.Add(Make(3, 8)));    // earlier but pricier: kept
  EXPECT_TRUE(sky.Add(Make(8, 2)));    // later but cheaper: kept
  EXPECT_FALSE(sky.Add(Make(6, 6)));   // dominated by (5,5)
  EXPECT_EQ(sky.size(), 3u);
  EXPECT_TRUE(sky.Add(Make(2, 2)));    // dominates all three kept options
  EXPECT_EQ(sky.size(), 1u);
}

TEST(SkylineTest, KeepsExactTies) {
  Skyline sky;
  EXPECT_TRUE(sky.Add(Make(4, 4, 1)));
  EXPECT_TRUE(sky.Add(Make(4, 4, 2)));  // identical offer, other vehicle
  EXPECT_EQ(sky.size(), 2u);
}

TEST(SkylineTest, CoveredBy) {
  Skyline sky;
  sky.Add(Make(5, 5));
  EXPECT_TRUE(sky.CoveredBy(6.0, 5.5));
  EXPECT_TRUE(sky.CoveredBy(5.0, 5.5));   // tie on time, worse price
  EXPECT_FALSE(sky.CoveredBy(5.0, 5.0));  // exact tie: not covered
  EXPECT_FALSE(sky.CoveredBy(4.0, 9.0));  // could still beat on time
  EXPECT_FALSE(sky.CoveredBy(9.0, 4.0));  // could still beat on price
  Skyline empty;
  EXPECT_FALSE(empty.CoveredBy(0.0, 0.0));
}

TEST(SkylineTest, TakeSortedOrdersByTime) {
  Skyline sky;
  sky.Add(Make(8, 2, 3));
  sky.Add(Make(3, 8, 1));
  sky.Add(Make(5, 5, 2));
  const std::vector<Option> out = sky.TakeSorted();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].pickup_distance, 3.0);
  EXPECT_DOUBLE_EQ(out[1].pickup_distance, 5.0);
  EXPECT_DOUBLE_EQ(out[2].pickup_distance, 8.0);
}

// Property: skyline == brute-force non-dominated filter, for random
// option sets of varying size.
class SkylinePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SkylinePropertyTest, MatchesBruteForce) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<Option> all;
  const int n = GetParam();
  for (int i = 0; i < n; ++i) {
    all.push_back(Make(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100),
                       static_cast<vehicle::VehicleId>(i)));
  }
  Skyline sky;
  for (const Option& o : all) sky.Add(o);
  std::vector<Option> got = sky.TakeSorted();

  std::vector<Option> expected;
  for (const Option& o : all) {
    bool dominated = false;
    for (const Option& other : all) {
      if (Dominates(other, o)) dominated = true;
    }
    if (!dominated) expected.push_back(o);
  }
  ASSERT_EQ(got.size(), expected.size());
  for (const Option& e : expected) {
    bool found = false;
    for (const Option& g : got) {
      if (g.vehicle == e.vehicle &&
          g.pickup_distance == e.pickup_distance && g.price == e.price) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << e.DebugString();
  }
  // Minimality: everything kept is non-dominated within the kept set.
  for (const Option& a : got) {
    for (const Option& b : got) {
      EXPECT_FALSE(Dominates(a, b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SkylinePropertyTest,
                         ::testing::Values(1, 2, 5, 20, 100, 400));

}  // namespace
}  // namespace ptrider::core
