// FaultInjector schedule semantics: seed-determinism, monotone cursor
// consumption, and the window-composition rules the service's virtual
// service-time model relies on (DESIGN.md section 14).
#include "service/fault_injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "roadnet/graph_generator.h"

namespace ptrider::service {
namespace {

roadnet::RoadNetwork SmallGrid(uint64_t seed = 11) {
  roadnet::CityGridOptions gopts;
  gopts.rows = 8;
  gopts.cols = 8;
  gopts.seed = seed;
  auto g = roadnet::MakeCityGrid(gopts);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

FaultInjectorOptions EveryKind(uint64_t seed) {
  FaultInjectorOptions fx;
  fx.seed = seed;
  fx.burst_count = 2;
  fx.burst_duration_s = 20.0;
  fx.burst_rate_per_s = 3.0;
  fx.cost_spike_count = 2;
  fx.cost_spike_duration_s = 15.0;
  fx.cost_spike_factor = 2.5;
  fx.stall_count = 2;
  fx.stall_duration_s = 6.0;
  fx.squeeze_count = 2;
  fx.squeeze_duration_s = 10.0;
  fx.squeeze_capacity_frac = 0.5;
  fx.malformed_count = 4;
  fx.expired_count = 3;
  return fx;
}

bool SameWindow(const FaultWindow& a, const FaultWindow& b) {
  return a.kind == b.kind && a.start_s == b.start_s && a.end_s == b.end_s &&
         a.magnitude == b.magnitude;
}

bool SameArrival(const InjectedArrival& a, const InjectedArrival& b) {
  return a.trip.time_s == b.trip.time_s && a.trip.origin == b.trip.origin &&
         a.trip.destination == b.trip.destination &&
         a.ingest_offset_s == b.ingest_offset_s && a.malformed == b.malformed;
}

// The whole schedule is a pure function of the seed: two injectors built
// from the same options are bit-identical; a different seed is not.
TEST(FaultInjectorTest, ScheduleIsDeterministicBySeed) {
  const auto graph = SmallGrid();
  FaultInjector a(graph, EveryKind(5), 300.0);
  FaultInjector b(graph, EveryKind(5), 300.0);
  ASSERT_EQ(a.windows().size(), b.windows().size());
  ASSERT_EQ(a.windows().size(), 8u);  // 2 of each of the 4 kinds
  for (size_t i = 0; i < a.windows().size(); ++i) {
    EXPECT_TRUE(SameWindow(a.windows()[i], b.windows()[i])) << "window " << i;
  }
  ASSERT_EQ(a.arrivals().size(), b.arrivals().size());
  EXPECT_GT(a.arrivals().size(), 7u);  // bursts + 4 malformed + 3 expired
  for (size_t i = 0; i < a.arrivals().size(); ++i) {
    EXPECT_TRUE(SameArrival(a.arrivals()[i], b.arrivals()[i]))
        << "arrival " << i;
  }

  FaultInjector c(graph, EveryKind(6), 300.0);
  bool any_diff = c.windows().size() != a.windows().size() ||
                  c.arrivals().size() != a.arrivals().size();
  for (size_t i = 0; !any_diff && i < a.windows().size(); ++i) {
    any_diff = !SameWindow(a.windows()[i], c.windows()[i]);
  }
  for (size_t i = 0; !any_diff && i < a.arrivals().size(); ++i) {
    any_diff = !SameArrival(a.arrivals()[i], c.arrivals()[i]);
  }
  EXPECT_TRUE(any_diff) << "seed 5 and 6 produced the identical schedule";
}

// Windows and arrivals land inside the horizon, sorted; malformed and
// expired arrivals carry the shapes the service must absorb.
TEST(FaultInjectorTest, ScheduleShapesAreWellFormed) {
  const auto graph = SmallGrid();
  FaultInjector fx(graph, EveryKind(5), 300.0);
  for (const FaultWindow& w : fx.windows()) {
    EXPECT_GE(w.start_s, 0.0);
    EXPECT_GT(w.end_s, w.start_s);
    EXPECT_LE(w.end_s, 300.0 + 1e-9);
  }
  size_t malformed = 0, expired = 0;
  double prev = -1.0;
  for (const InjectedArrival& a : fx.arrivals()) {
    EXPECT_GE(a.trip.time_s, prev);  // sorted
    prev = a.trip.time_s;
    EXPECT_LE(a.trip.time_s, 300.0 + 1e-9);
    if (a.malformed) {
      ++malformed;
      EXPECT_EQ(a.trip.origin, a.trip.destination);
    } else {
      EXPECT_NE(a.trip.origin, a.trip.destination);
    }
    if (a.ingest_offset_s < 0.0) ++expired;
  }
  EXPECT_EQ(malformed, 4u);
  EXPECT_EQ(expired, 3u);
}

// ArrivalsDue is a monotone cursor: each arrival is handed out exactly
// once, in order, and a repeated query at the same instant is empty.
TEST(FaultInjectorTest, ArrivalsDueConsumesEachArrivalOnce) {
  const auto graph = SmallGrid();
  FaultInjector fx(graph, EveryKind(5), 300.0);
  const size_t total = fx.arrivals().size();
  std::vector<InjectedArrival> out;
  size_t seen = 0;
  for (double t = 0.0; t <= 300.0; t += 7.0) {
    out.clear();
    const size_t n = fx.ArrivalsDue(t, out);
    EXPECT_EQ(n, out.size());
    for (const InjectedArrival& a : out) EXPECT_LE(a.trip.time_s, t);
    seen += n;
    out.clear();
    EXPECT_EQ(fx.ArrivalsDue(t, out), 0u) << "re-query at t=" << t;
  }
  out.clear();
  seen += fx.ArrivalsDue(301.0, out);
  EXPECT_EQ(seen, total);
  EXPECT_EQ(fx.stats().arrivals_offered, total);
  EXPECT_EQ(fx.stats().malformed_offered, 4u);
  EXPECT_EQ(fx.stats().expired_offered, 3u);
}

// Factor/stall queries against a hand-built schedule (counts = 1 so the
// single window of each kind is easy to locate).
TEST(FaultInjectorTest, WindowQueriesComposeCorrectly) {
  const auto graph = SmallGrid();
  FaultInjectorOptions fx_opts;
  fx_opts.seed = 12;
  fx_opts.cost_spike_count = 1;
  fx_opts.cost_spike_duration_s = 30.0;
  fx_opts.cost_spike_factor = 3.0;
  fx_opts.stall_count = 1;
  fx_opts.stall_duration_s = 10.0;
  fx_opts.squeeze_count = 1;
  fx_opts.squeeze_duration_s = 25.0;
  fx_opts.squeeze_capacity_frac = 0.25;
  FaultInjector fx(graph, fx_opts, 500.0);
  ASSERT_EQ(fx.windows().size(), 3u);

  const FaultWindow* spike = nullptr;
  const FaultWindow* stall = nullptr;
  const FaultWindow* squeeze = nullptr;
  for (const FaultWindow& w : fx.windows()) {
    if (w.kind == FaultKind::kCostSpike) spike = &w;
    if (w.kind == FaultKind::kWorkerStall) stall = &w;
    if (w.kind == FaultKind::kCapacitySqueeze) squeeze = &w;
  }
  ASSERT_NE(spike, nullptr);
  ASSERT_NE(stall, nullptr);
  ASSERT_NE(squeeze, nullptr);

  const double mid_spike = 0.5 * (spike->start_s + spike->end_s);
  EXPECT_DOUBLE_EQ(fx.CostFactorAt(mid_spike), 3.0);
  EXPECT_DOUBLE_EQ(fx.CostFactorAt(spike->end_s + 1.0), 1.0);

  const double mid_squeeze = 0.5 * (squeeze->start_s + squeeze->end_s);
  EXPECT_DOUBLE_EQ(fx.CapacityFactorAt(mid_squeeze), 0.25);
  EXPECT_DOUBLE_EQ(fx.CapacityFactorAt(squeeze->start_s - 1.0), 1.0);

  // Full containment, partial overlap, and no overlap.
  EXPECT_NEAR(fx.StallSecondsIn(stall->start_s - 5.0, stall->end_s + 5.0),
              stall->end_s - stall->start_s, 1e-9);
  const double half = 0.5 * (stall->start_s + stall->end_s);
  EXPECT_NEAR(fx.StallSecondsIn(stall->start_s, half), half - stall->start_s,
              1e-9);
  EXPECT_DOUBLE_EQ(fx.StallSecondsIn(stall->end_s + 1.0, stall->end_s + 9.0),
                   0.0);

  // WindowsEndedBy is a monotone consuming counter over window ends.
  EXPECT_EQ(fx.WindowsEndedBy(0.0), 0u);
  size_t crossed = fx.WindowsEndedBy(501.0);
  EXPECT_EQ(crossed, 3u);
  EXPECT_EQ(fx.WindowsEndedBy(501.0), 0u);
  EXPECT_EQ(fx.stats().windows_crossed, 3u);
}

}  // namespace
}  // namespace ptrider::service
