// Fixture for the wall-clock bench exemption: benches measure wall
// time, that is their job. Rand and raw threads stay banned even here.

#include <chrono>

namespace fixture {

double BenchTimer() {
  const auto t0 = std::chrono::high_resolution_clock::now();  // allowed
  const auto t1 = std::chrono::steady_clock::now();           // allowed
  return std::chrono::duration<double>(t1 - t0).count();
}

int NoRandInBenchesEither() {
  return rand();  // expect: raw-rand
}

}  // namespace fixture
