// Fixture for the raw-rand allowlist: src/util/random.h is the one
// place libc/std randomness primitives may appear (the real file
// documents why SplitMix64/xoshiro replace them).

#ifndef FIXTURE_UTIL_RANDOM_H_
#define FIXTURE_UTIL_RANDOM_H_

#include <cstdlib>

namespace fixture {

inline int LegacyComparisonOnly() {
  std::srand(1);     // allowed here, and only here
  return rand();     // allowed here, and only here
}

}  // namespace fixture

#endif  // FIXTURE_UTIL_RANDOM_H_
