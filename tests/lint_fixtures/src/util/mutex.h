// Fixture for the raw-mutex allowlist: src/util/mutex.h is the wrapper
// itself — the only file where the std primitives may appear.

#ifndef FIXTURE_UTIL_MUTEX_H_
#define FIXTURE_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

namespace fixture {

class Wrapper {
  std::mutex mu_;                 // allowed here, and only here
  std::condition_variable cv_;    // allowed here, and only here
};

}  // namespace fixture

#endif  // FIXTURE_UTIL_MUTEX_H_
