// Fixture: src/roadnet is NOT a report-feeding directory — internal
// hash iteration (e.g. during index construction, where the result is
// re-sorted before use) is allowed there. The other rules still apply
// tree-wide.

#include <unordered_set>

namespace fixture {

int CountAll(const std::unordered_set<int>& ids) {
  int n = 0;
  for (int id : ids) n += (id != 0) ? 1 : 0;  // allowed: out of scope
  return n;
}

int StillNoLibcRand() {
  return rand();  // expect: raw-rand
}

}  // namespace fixture
