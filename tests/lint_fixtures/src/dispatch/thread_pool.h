// Fixture for the raw-thread allowlist: dispatch/thread_pool.* owns
// worker threads (the real pool's join discipline lives there).

#ifndef FIXTURE_DISPATCH_THREAD_POOL_H_
#define FIXTURE_DISPATCH_THREAD_POOL_H_

#include <thread>
#include <vector>

namespace fixture {

class Pool {
  std::vector<std::thread> workers_;  // allowed here
};

}  // namespace fixture

#endif  // FIXTURE_DISPATCH_THREAD_POOL_H_
