// Fixture for the wall-clock allowlist: src/service/clock.h is the
// sanctioned wall-time source (the real WallClock lives there).

#ifndef FIXTURE_SERVICE_CLOCK_H_
#define FIXTURE_SERVICE_CLOCK_H_

#include <chrono>

namespace fixture {

inline double WallNow() {
  using Clock = std::chrono::steady_clock;   // allowed here
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture

#endif  // FIXTURE_SERVICE_CLOCK_H_
