// Fixture: service/ code outside clock.h gets no wall-clock exemption —
// only the clock abstraction may read machine time, everything else
// must go through ServiceClock so virtual-clock runs stay bit-identical.

#include <chrono>

namespace fixture {

double SneakyDirectRead() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now()  // expect: wall-clock
                 .time_since_epoch())
      .count();
}

}  // namespace fixture
