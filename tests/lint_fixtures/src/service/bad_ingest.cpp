// Fixture for the direct-push rule: a TryPush call site outside the
// WorkloadDriver / dispatch-service ingress bypasses the
// offered/retried/gave-up accounting that the admission funnel
// invariants are audited against — only the driver may ingest.
// Mentioning TryPush in a comment or a string must not fire; the
// allowlisted files (workload_driver.*, dispatch_service.cpp,
// mpsc_queue.h) are covered by linting the real tree.

namespace fixture {

struct Queue {
  bool TryPush(int) { return true; }  // expect: direct-push
};

inline void SneakyIngest(Queue& q) {
  const char* doc = "call TryPush through the driver";  // string: no finding
  (void)doc;
  q.TryPush(42);  // expect: direct-push
  q.TryPush(43);  // lint: allow(direct-push) — escape hatch keeps working
  int my_TryPush_count = 0;  // identifier boundary: no finding
  (void)my_TryPush_count;
}

}  // namespace fixture
