// Fixture header: the unordered member is declared here but iterated in
// the sibling .cpp — the linter folds sibling-header declarations into
// the .cpp's name set.

#ifndef FIXTURE_HEADER_MEMBER_H_
#define FIXTURE_HEADER_MEMBER_H_

#include <unordered_map>

namespace fixture {

class Ledger {
 public:
  double Total() const;
  void Add(int id, double amount);

 private:
  std::unordered_map<int, double> amounts_;
};

}  // namespace fixture

#endif  // FIXTURE_HEADER_MEMBER_H_
