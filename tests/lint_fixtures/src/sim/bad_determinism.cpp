// Fixture: every determinism rule fires in a report-feeding directory.
// Expectation markers name the lines the linter must flag — the
// self-test fails on any missing OR extra finding.

#include <cstdlib>
#include <random>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

int SeedlessDraw() {
  std::srand(42);                           // expect: raw-rand
  return rand();                            // expect: raw-rand
}

unsigned HardwareEntropy() {
  std::random_device rd;                    // expect: raw-rand
  return rd();
}

double WallStamp() {
  const auto t0 = std::chrono::steady_clock::now();   // expect: wall-clock
  const auto t1 = std::chrono::system_clock::now();   // expect: wall-clock
  (void)t0;
  (void)t1;
  return 0.0;
}

void SpawnUnowned() {
  std::thread t([] {});                     // expect: raw-thread
  t.join();
}

unsigned OkStaticMember() {
  // Naming the type for its static member starts no thread: allowed.
  return std::thread::hardware_concurrency();
}

struct Metrics {
  std::unordered_map<int, double> by_vehicle;
  std::unordered_set<int> seen;

  double Total() const {
    double total = 0.0;
    for (const auto& kv : by_vehicle) {     // expect: unordered-iter
      total += kv.second;
    }
    for (int id : seen) {                   // expect: unordered-iter
      total += id;
    }
    return total;
  }

  bool Lookups() const {
    // find/count/insert are order-free: not flagged.
    return by_vehicle.find(3) != by_vehicle.end() && seen.count(7) != 0;
  }
};

void BareLocking() {
  std::mutex mu;                            // expect: raw-mutex
  std::lock_guard<std::mutex> lock(mu);     // expect: raw-mutex
}

}  // namespace fixture
