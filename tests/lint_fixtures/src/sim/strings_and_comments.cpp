// Fixture: rule tokens inside comments and string literals never fire.
// A linter that flags its own documentation is unusable.

#include <string>

namespace fixture {

// Doc comments routinely *name* the banned things: std::mutex,
// std::thread, rand(), std::chrono::steady_clock, unordered_map
// iteration — none of these may produce findings.

/* Block comments too: srand(123); std::random_device rd;
   for (auto& kv : some_unordered_map) {} */

std::string Diagnostics() {
  std::string msg = "do not call rand() or srand() here";
  msg += "std::mutex is banned; so is std::chrono::system_clock";
  msg += "std::thread t; t.detach();";
  return msg;
}

}  // namespace fixture
