// Fixture: iterating a hash member declared in the sibling header.

#include "header_member.h"

namespace fixture {

void Ledger::Add(int id, double amount) { amounts_[id] += amount; }

double Ledger::Total() const {
  double total = 0.0;
  for (const auto& kv : amounts_) {  // expect: unordered-iter
    total += kv.second;
  }
  return total;
}

}  // namespace fixture
