// Fixture: direct stage calls outside the tick engine. Only
// Simulator::Run / StepWindow / AdvanceTick may sequence the dispatch
// and movement stages — a hand-rolled MovePhase/DispatchBatch loop
// skips the reindex joins and mask bookkeeping of the pipelined engine.
// (This file's repo-relative path is src/sim/bad_stage_order.cpp, which
// is NOT on the stage-order allowlist.)

namespace fixture {

struct FakeSim {
  // Token-level rule: redeclaring the stage names outside the engine
  // fires too (mirrors the direct-push fixture idiom).
  int DispatchBatch(int batch, double now);  // expect: stage-order
  int MovePhase(double now, double budget);  // expect: stage-order
  int StepWindow(int batch, double now) { return batch + (now > 0); }
};

int HandRolledLoop(FakeSim& sim) {
  int total = 0;
  total += sim.DispatchBatch(3, 1.0);  // expect: stage-order
  total += sim.MovePhase(1.0, 2.0);    // expect: stage-order
  // Mentioning DispatchBatch in a comment or "MovePhase(" in a string
  // must not fire:
  const char* doc = "never call MovePhase() directly";
  total += doc != nullptr;
  // The sanctioned entry point is fine:
  total += sim.StepWindow(3, 2.0);
  // And a justified escape silences exactly this line:
  total += sim.MovePhase(2.0, 3.0);  // lint: allow(stage-order)
  return total;
}

}  // namespace fixture
