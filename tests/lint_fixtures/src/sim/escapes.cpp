// Fixture: the `// lint: allow(<rule>)` escape hatch silences exactly
// the named rule on exactly that line, and nothing else.

#include <cstdlib>
#include <unordered_map>

namespace fixture {

int JustifiedEscape() {
  // Hypothetical interop with a C library that demands srand:
  std::srand(7);  // lint: allow(raw-rand)
  return 0;
}

int WrongRuleNamed() {
  return rand();  // lint: allow(wall-clock) -- expect: raw-rand
}

double EscapedIteration(const std::unordered_map<int, double>& weights) {
  double s = 0.0;
  // Summation is order-free in exact arithmetic only; this fixture
  // pretends a proof exists:
  for (const auto& kv : weights) s += kv.second;  // lint: allow(unordered-iter)
  return s;
}

}  // namespace fixture
