#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace ptrider::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad weight");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad weight");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad weight");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kAlreadyExists, StatusCode::kResourceExhausted,
        StatusCode::kUnimplemented, StatusCode::kIoError,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "UNKNOWN");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chain(int x) {
  PTRIDER_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfError) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> HalfOfEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOfMultipleOf4(int x) {
  PTRIDER_ASSIGN_OR_RETURN(const int half, HalfOfEven(x));
  PTRIDER_ASSIGN_OR_RETURN(const int quarter, HalfOfEven(half));
  return quarter;
}

TEST(StatusMacroTest, AssignOrReturn) {
  const Result<int> ok = QuarterOfMultipleOf4(12);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 3);
  EXPECT_FALSE(QuarterOfMultipleOf4(6).ok());
  EXPECT_FALSE(QuarterOfMultipleOf4(3).ok());
}

}  // namespace
}  // namespace ptrider::util
