// Negative fixture: reading and writing a GUARDED_BY field without the
// mutex MUST fail to compile under -Werror=thread-safety. The ctest
// script asserts this file is rejected (and that the sibling
// guarded_access.cpp is accepted) — if it ever compiles clean, the
// annotation macros have rotted into no-ops under the CI compiler.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Counter {
  ptrider::util::Mutex mu;
  int value GUARDED_BY(mu) = 0;
};

int ReadWithoutLock(Counter& c) {
  return c.value;  // -Wthread-safety: reading without holding c.mu
}

void WriteWithoutLock(Counter& c) {
  ++c.value;  // -Wthread-safety: writing without holding c.mu
}

}  // namespace

int main() {
  Counter c;
  WriteWithoutLock(c);
  return ReadWithoutLock(c);
}
