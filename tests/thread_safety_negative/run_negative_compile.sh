#!/bin/sh
# Negative-compile check for the Clang thread-safety annotations
# (ISSUE 8 / DESIGN.md section 13). Asserts both directions:
#   * guarded_access.cpp   (every sanctioned locking pattern) compiles;
#   * unguarded_access.cpp (GUARDED_BY field touched without the lock)
#     is REJECTED, with a thread-safety diagnostic — not some unrelated
#     error.
# Exits 77 (ctest SKIP_RETURN_CODE) under non-clang compilers, where the
# annotations are deliberate no-ops.
#
# usage: run_negative_compile.sh <cxx> <src_include_root> <fixture_dir>

set -u
CXX="$1"
SRC="$2"
DIR="$3"

if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "SKIP: annotations are no-ops under $("$CXX" --version | head -1)"
  exit 77
fi

FLAGS="-std=c++20 -fsyntax-only -I$SRC -Wthread-safety -Werror=thread-safety"

if ! "$CXX" $FLAGS "$DIR/guarded_access.cpp"; then
  echo "FAIL: guarded_access.cpp (the positive control) did not compile —"
  echo "      the util/mutex.h annotations themselves are broken"
  exit 1
fi

ERRLOG="$(mktemp)"
trap 'rm -f "$ERRLOG"' EXIT
if "$CXX" $FLAGS "$DIR/unguarded_access.cpp" 2>"$ERRLOG"; then
  echo "FAIL: unguarded GUARDED_BY access compiled clean — the"
  echo "      thread-safety annotations have silently rotted"
  exit 1
fi
if ! grep -q "thread-safety" "$ERRLOG"; then
  cat "$ERRLOG"
  echo "FAIL: unguarded_access.cpp was rejected, but not by the"
  echo "      thread-safety analysis (see diagnostics above)"
  exit 1
fi

echo "PASS: annotations enforce GUARDED_BY at compile time"
exit 0
