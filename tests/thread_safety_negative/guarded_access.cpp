// Positive control for the negative-compile test: every sanctioned
// locking pattern in the codebase, written against util::Mutex, must
// compile clean under -Wthread-safety -Werror=thread-safety. If this
// file stops compiling, the annotations in util/mutex.h are wrong (and
// the failure of the sibling unguarded_access.cpp proves nothing).

#include <deque>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

using ptrider::util::CondVar;
using ptrider::util::Mutex;
using ptrider::util::MutexLock;

struct Counter {
  mutable Mutex mu;
  int value GUARDED_BY(mu) = 0;
};

// RAII pattern (the common case: MutexLock scopes the critical section).
int ScopedRead(const Counter& c) {
  const MutexLock lock(c.mu);
  return c.value;
}

// REQUIRES pattern (helper called with the lock already held).
void BumpLocked(Counter& c) REQUIRES(c.mu) { ++c.value; }

void ScopedBump(Counter& c) {
  const MutexLock lock(c.mu);
  BumpLocked(c);
}

// Manual Lock/Unlock + CondVar::Wait in a predicate loop — the
// ThreadPool::WorkerLoop shape.
struct Queue {
  Mutex mu;
  CondVar ready;
  std::deque<int> items GUARDED_BY(mu);
  bool stopping GUARDED_BY(mu) = false;
};

int BlockingPop(Queue& q) {
  q.mu.Lock();
  while (!q.stopping && q.items.empty()) q.ready.Wait(q.mu);
  int item = -1;
  if (!q.items.empty()) {
    item = q.items.front();
    q.items.pop_front();
  }
  q.mu.Unlock();
  return item;
}

void Push(Queue& q, int item) {
  {
    const MutexLock lock(q.mu);
    q.items.push_back(item);
  }
  q.ready.NotifyOne();
}

}  // namespace

int main() {
  Counter c;
  ScopedBump(c);
  Queue q;
  Push(q, ScopedRead(c));
  return BlockingPop(q) == 0 ? 0 : 1;
}
