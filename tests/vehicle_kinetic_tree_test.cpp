#include "vehicle/kinetic_tree.h"

#include <gtest/gtest.h>

#include "core/distance_providers.h"
#include "roadnet/distance_oracle.h"
#include "roadnet/paper_example.h"

namespace ptrider::vehicle {
namespace {

using roadnet::MakePaperExampleNetwork;
using roadnet::PaperExampleNetwork;

/// Fixture on the paper network with unit speed (distance == time).
class KineticTreeTest : public ::testing::Test {
 protected:
  KineticTreeTest()
      : ex_(MakePaperExampleNetwork()),
        oracle_(ex_.graph),
        dist_(oracle_) {
    ctx_.now_s = 0.0;
    ctx_.speed_mps = 1.0;
  }

  Request MakeRequest(RequestId id, int s, int d, int n = 2,
                      double w = 5.0, double sigma = 0.2) {
    Request r;
    r.id = id;
    r.start = ex_.v(s);
    r.destination = ex_.v(d);
    r.num_riders = n;
    r.max_wait_s = w;
    r.service_sigma = sigma;
    return r;
  }

  PaperExampleNetwork ex_;
  roadnet::DistanceOracle oracle_;
  core::ExactDistanceProvider dist_;
  ScheduleContext ctx_;
};

TEST_F(KineticTreeTest, EmptyTreeBasics) {
  KineticTree tree(ex_.v(13), 3);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.NumBranches(), 0u);
  EXPECT_EQ(tree.NumTreeNodes(), 0u);
  EXPECT_DOUBLE_EQ(tree.BestTotalDistance(), 0.0);
  EXPECT_EQ(tree.RidersOnboard(), 0);
}

TEST_F(KineticTreeTest, TrialInsertIntoEmptyVehicle) {
  KineticTree tree(ex_.v(13), 3);
  const Request r2 = MakeRequest(2, 12, 17);
  const auto candidates = tree.TrialInsert(r2, ctx_, dist_, nullptr);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_DOUBLE_EQ(candidates[0].pickup_distance, 8.0);   // dist(v13,v12)
  EXPECT_DOUBLE_EQ(candidates[0].total_distance, 15.0);   // 8 + 7
  ASSERT_EQ(candidates[0].stops.size(), 2u);
  EXPECT_EQ(candidates[0].stops[0].type, StopType::kPickup);
  EXPECT_EQ(candidates[0].stops[1].type, StopType::kDropoff);
}

TEST_F(KineticTreeTest, CapacityBlocksLargeGroup) {
  KineticTree tree(ex_.v(13), 3);
  const Request big = MakeRequest(9, 12, 17, /*n=*/4);
  EXPECT_TRUE(tree.TrialInsert(big, ctx_, dist_, nullptr).empty());
}

TEST_F(KineticTreeTest, UnreachableDestinationYieldsNothing) {
  KineticTree tree(ex_.v(13), 3);
  Request r = MakeRequest(9, 12, 17);
  r.destination = 1000;  // not in the network
  EXPECT_TRUE(tree.TrialInsert(r, ctx_, dist_, nullptr).empty());
}

TEST_F(KineticTreeTest, CommitSetsDeadlineAndBranches) {
  KineticTree tree(ex_.v(13), 3);
  const Request r2 = MakeRequest(2, 12, 17);
  ASSERT_TRUE(tree.CommitInsert(r2, 8.0, 8.8, ctx_, dist_).ok());
  EXPECT_FALSE(tree.empty());
  EXPECT_EQ(tree.NumPendingRequests(), 1u);
  EXPECT_EQ(tree.NumBranches(), 1u);
  const PendingRequest& p = tree.pending().at(2);
  EXPECT_DOUBLE_EQ(p.planned_pickup_s, 8.0);        // 8 m at 1 m/s
  EXPECT_DOUBLE_EQ(p.pickup_deadline_s, 13.0);      // + w = 5
  EXPECT_DOUBLE_EQ(p.max_trip_distance_m, 1.2 * 7.0);
  EXPECT_FALSE(p.onboard);
  EXPECT_DOUBLE_EQ(p.price, 8.8);
}

TEST_F(KineticTreeTest, DoubleCommitRejected) {
  KineticTree tree(ex_.v(13), 3);
  const Request r2 = MakeRequest(2, 12, 17);
  ASSERT_TRUE(tree.CommitInsert(r2, 8.0, 8.8, ctx_, dist_).ok());
  EXPECT_EQ(tree.CommitInsert(r2, 8.0, 8.8, ctx_, dist_).code(),
            util::StatusCode::kAlreadyExists);
}

/// Reproduces the Section-2 scenario on vehicle c1: schedule <v1,v2,v16>
/// serving R1, then R2 = <v12, v17, 2, 5, 0.2> is trial-inserted.
class PaperScheduleTest : public KineticTreeTest {
 protected:
  PaperScheduleTest() : tree_(ex_.v(1), 4) {
    const Request r1 = MakeRequest(1, 2, 16);
    // R1 was quoted the direct pick-up v1 -> v2 (distance 6).
    EXPECT_TRUE(tree_.CommitInsert(r1, 6.0, 0.0, ctx_, dist_).ok());
    EXPECT_DOUBLE_EQ(tree_.BestTotalDistance(), 18.0);  // 6 + 12
  }

  KineticTree tree_;
};

TEST_F(PaperScheduleTest, TrialInsertR2FindsTwoValidSchedules) {
  const Request r2 = MakeRequest(2, 12, 17);
  auto candidates = tree_.TrialInsert(r2, ctx_, dist_, nullptr);
  // Valid: <+2@v12 between v2 and v16, -2@v17 last> (pickup 14, total 21)
  // and <serve R1 fully, then R2> (pickup 22, total 29). Orderings that
  // delay R1's pickup beyond 6+5 or stretch R1's trip beyond 14.4 die.
  ASSERT_EQ(candidates.size(), 2u);
  std::sort(candidates.begin(), candidates.end(),
            [](const InsertionCandidate& a, const InsertionCandidate& b) {
              return a.pickup_distance < b.pickup_distance;
            });
  EXPECT_DOUBLE_EQ(candidates[0].pickup_distance, 14.0);
  EXPECT_DOUBLE_EQ(candidates[0].total_distance, 21.0);
  EXPECT_DOUBLE_EQ(candidates[1].pickup_distance, 22.0);
  EXPECT_DOUBLE_EQ(candidates[1].total_distance, 29.0);
}

TEST_F(PaperScheduleTest, InsertionStatsCount) {
  const Request r2 = MakeRequest(2, 12, 17);
  InsertionStats stats;
  tree_.TrialInsert(r2, ctx_, dist_, &stats);
  EXPECT_EQ(stats.accepted, 2u);
  // 1 branch with 2 stops: insertion slots (i,j) with 0<=i<=j<=2 -> 6.
  EXPECT_EQ(stats.sequences_generated, 6u);
  EXPECT_EQ(stats.bound_pruned + stats.exact_validated,
            stats.sequences_generated);
}

TEST_F(PaperScheduleTest, CommitKeepsOnlyDeadlineRespectingBranches) {
  const Request r2 = MakeRequest(2, 12, 17);
  // Rider chose the cheap option: planned pickup distance 14.
  ASSERT_TRUE(tree_.CommitInsert(r2, 14.0, 4.0, ctx_, dist_).ok());
  // The (22, 29) ordering arrives at 22 > 14 + 5 = 19: dropped.
  EXPECT_EQ(tree_.NumBranches(), 1u);
  EXPECT_DOUBLE_EQ(tree_.BestTotalDistance(), 21.0);
  const std::vector<Stop>& stops = tree_.BestBranch().stops;
  ASSERT_EQ(stops.size(), 4u);
  EXPECT_EQ(stops[0].location, ex_.v(2));   // +R1
  EXPECT_EQ(stops[1].location, ex_.v(12));  // +R2
  EXPECT_EQ(stops[2].location, ex_.v(16));  // -R1
  EXPECT_EQ(stops[3].location, ex_.v(17));  // -R2
}

TEST_F(PaperScheduleTest, FullLifecycleDriveAndServe) {
  const Request r2 = MakeRequest(2, 12, 17);
  ASSERT_TRUE(tree_.CommitInsert(r2, 14.0, 4.0, ctx_, dist_).ok());

  // Drive v1 -> v2 (6 m, 6 s).
  ScheduleContext ctx = ctx_;
  ctx.now_s = 6.0;
  ASSERT_TRUE(tree_
                  .AdvanceTo(ex_.v(2), 6.0, ctx, dist_,
                             tree_.BestBranch().stops)
                  .ok());
  auto stop = tree_.PopFirstStop(ctx);
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop->request, 1);
  EXPECT_EQ(stop->type, StopType::kPickup);
  EXPECT_EQ(tree_.RidersOnboard(), 2);

  // Drive v2 -> v12 (8 m).
  ctx.now_s = 14.0;
  ASSERT_TRUE(tree_
                  .AdvanceTo(ex_.v(12), 8.0, ctx, dist_,
                             tree_.BestBranch().stops)
                  .ok());
  stop = tree_.PopFirstStop(ctx);
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop->request, 2);
  EXPECT_EQ(stop->type, StopType::kPickup);
  EXPECT_EQ(tree_.RidersOnboard(), 4);
  EXPECT_DOUBLE_EQ(tree_.pending().at(1).consumed_trip_distance_m, 8.0);

  // Drive v12 -> v16 (4 m): drop R1.
  ctx.now_s = 18.0;
  ASSERT_TRUE(tree_
                  .AdvanceTo(ex_.v(16), 4.0, ctx, dist_,
                             tree_.BestBranch().stops)
                  .ok());
  stop = tree_.PopFirstStop(ctx);
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop->request, 1);
  EXPECT_EQ(stop->type, StopType::kDropoff);
  EXPECT_EQ(tree_.RidersOnboard(), 2);
  EXPECT_EQ(tree_.NumPendingRequests(), 1u);

  // Drive v16 -> v17 (3 m): drop R2; tree empties.
  ctx.now_s = 21.0;
  ASSERT_TRUE(tree_
                  .AdvanceTo(ex_.v(17), 3.0, ctx, dist_,
                             tree_.BestBranch().stops)
                  .ok());
  stop = tree_.PopFirstStop(ctx);
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop->request, 2);
  EXPECT_EQ(stop->type, StopType::kDropoff);
  EXPECT_TRUE(tree_.empty());
  EXPECT_EQ(tree_.NumPendingRequests(), 0u);
}

TEST_F(PaperScheduleTest, PopRequiresRootAtStop) {
  EXPECT_EQ(tree_.PopFirstStop(ctx_).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(PaperScheduleTest, ValidateSequenceRejectsStructuralErrors) {
  const Stop p1{1, StopType::kPickup, ex_.v(2)};
  const Stop d1{1, StopType::kDropoff, ex_.v(16)};
  // Missing dropoff.
  EXPECT_FALSE(tree_.ValidateSequence({p1}, ctx_, dist_, nullptr, 0.0,
                                      nullptr, nullptr));
  // Dropoff before pickup.
  EXPECT_FALSE(tree_.ValidateSequence({d1, p1}, ctx_, dist_, nullptr, 0.0,
                                      nullptr, nullptr));
  // Duplicate pickup.
  EXPECT_FALSE(tree_.ValidateSequence({p1, p1, d1}, ctx_, dist_, nullptr,
                                      0.0, nullptr, nullptr));
  // Unknown request id.
  const Stop px{77, StopType::kPickup, ex_.v(2)};
  const Stop dx{77, StopType::kDropoff, ex_.v(16)};
  EXPECT_FALSE(tree_.ValidateSequence({px, dx}, ctx_, dist_, nullptr, 0.0,
                                      nullptr, nullptr));
  // The correct sequence passes and reports its total.
  roadnet::Weight total = 0.0;
  EXPECT_TRUE(tree_.ValidateSequence({p1, d1}, ctx_, dist_, nullptr, 0.0,
                                     &total, nullptr));
  EXPECT_DOUBLE_EQ(total, 18.0);
}

TEST_F(PaperScheduleTest, WaitingTimeConstraintPrunesLateBranches) {
  // A second request whose pickup lies before R1's: serving it first
  // would delay R1's pickup to 13.5 + 8 > 11; the only orderings kept
  // pick R1 up first.
  const Request r3 = MakeRequest(3, 12, 17, /*n=*/1);
  const auto candidates = tree_.TrialInsert(r3, ctx_, dist_, nullptr);
  for (const auto& c : candidates) {
    ASSERT_FALSE(c.stops.empty());
    EXPECT_EQ(c.stops[0].request, 1)
        << "R1 pickup must stay first in every valid schedule";
  }
}

TEST_F(KineticTreeTest, ServiceConstraintLimitsDetour) {
  // Vehicle at v11 serving R = <v12, v16> with sigma = 0: no detour at
  // all is allowed; a second request that would stretch R's trip dies.
  KineticTree tree(ex_.v(11), 4);
  Request r = MakeRequest(5, 12, 16, 1, /*w=*/100.0, /*sigma=*/0.0);
  ASSERT_TRUE(tree.CommitInsert(r, 2.5, 0.0, ctx_, dist_).ok());
  // R9 from v7 to v8: any interleaving inside R5's trip adds distance.
  Request r9 = MakeRequest(9, 7, 8, 1, /*w=*/1000.0, /*sigma=*/3.0);
  const auto candidates = tree.TrialInsert(r9, ctx_, dist_, nullptr);
  for (const auto& c : candidates) {
    // R9 must not be sandwiched between +5 and -5.
    bool inside = false;
    bool r5_open = false;
    for (const Stop& s : c.stops) {
      if (s.request == 5) r5_open = s.type == StopType::kPickup;
      if (s.request == 9 && r5_open) inside = true;
    }
    EXPECT_FALSE(inside);
  }
}

TEST_F(KineticTreeTest, NumTreeNodesCountsTriePrefixes) {
  KineticTree tree(ex_.v(1), 4);
  const Request a = MakeRequest(1, 2, 16, 1, /*w=*/1e6, /*sigma=*/10.0);
  ASSERT_TRUE(tree.CommitInsert(a, 6.0, 0.0, ctx_, dist_).ok());
  const Request b = MakeRequest(2, 12, 17, 1, /*w=*/1e6, /*sigma=*/10.0);
  ASSERT_TRUE(
      tree.CommitInsert(b, 1e6 /* lax planned pickup */, 0.0, ctx_, dist_)
          .ok());
  // Loose constraints keep several orderings; trie sharing means fewer
  // nodes than branches * stops.
  EXPECT_GT(tree.NumBranches(), 1u);
  EXPECT_LT(tree.NumTreeNodes(),
            tree.NumBranches() * tree.BestBranch().stops.size());
  EXPECT_GE(tree.NumTreeNodes(), tree.BestBranch().stops.size());
}

TEST_F(KineticTreeTest, AdvanceAccruesOnboardConsumption) {
  KineticTree tree(ex_.v(13), 3);
  const Request r = MakeRequest(2, 12, 17);
  ASSERT_TRUE(tree.CommitInsert(r, 8.0, 8.8, ctx_, dist_).ok());
  ScheduleContext ctx = ctx_;
  ctx.now_s = 8.0;
  ASSERT_TRUE(
      tree.AdvanceTo(ex_.v(12), 8.0, ctx, dist_, tree.BestBranch().stops)
          .ok());
  // Not yet onboard: no consumption.
  EXPECT_DOUBLE_EQ(tree.pending().at(2).consumed_trip_distance_m, 0.0);
  ASSERT_TRUE(tree.PopFirstStop(ctx).ok());
  ctx.now_s = 12.0;
  ASSERT_TRUE(
      tree.AdvanceTo(ex_.v(16), 4.0, ctx, dist_, tree.BestBranch().stops)
          .ok());
  EXPECT_DOUBLE_EQ(tree.pending().at(2).consumed_trip_distance_m, 4.0);
}

}  // namespace
}  // namespace ptrider::vehicle
