// Targeted soundness check for the dual-side matcher's detour lower
// bound: on randomized loaded vehicles, DetourLowerBound must never
// exceed the true minimal Delta = dist_trj - dist_tri over the
// enumerated insertion candidates. An unsound bound here would prune
// valid options and break matcher equivalence, so this property gets its
// own suite beyond the end-to-end equivalence test.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/distance_providers.h"
#include "core/indexed_matcher.h"
#include "roadnet/distance_oracle.h"
#include "roadnet/graph_generator.h"
#include "util/random.h"
#include "vehicle/fleet.h"

namespace ptrider::core {
namespace {

/// Test shim exposing the protected bound computations.
class BoundProbe : public IndexedMatcherBase {
 public:
  BoundProbe(const MatchContext& context)
      : IndexedMatcherBase(context, /*dual_side=*/true) {}
  const char* name() const override { return "probe"; }

  roadnet::Weight Detour(const vehicle::Vehicle& v,
                         const vehicle::Request& r,
                         roadnet::Weight direct) const {
    return DetourLowerBound(v, r, direct);
  }
  roadnet::Weight Pickup(const vehicle::Vehicle& v,
                         roadnet::VertexId s) const {
    return PickupLowerBound(v, s);
  }
};

class DetourBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DetourBoundTest, BoundsNeverExceedRealizedValues) {
  roadnet::CityGridOptions gopts;
  gopts.rows = 12;
  gopts.cols = 12;
  gopts.seed = GetParam();
  auto graph = roadnet::MakeCityGrid(gopts);
  ASSERT_TRUE(graph.ok());
  roadnet::GridIndexOptions grid_opts;
  grid_opts.cells_x = 6;
  grid_opts.cells_y = 6;
  auto grid = roadnet::GridIndex::Build(*graph, grid_opts);
  ASSERT_TRUE(grid.ok());
  roadnet::DistanceOracle oracle(*graph);
  ExactDistanceProvider dist(oracle);
  util::Rng rng(GetParam() * 13 + 5);

  Config cfg;
  vehicle::Fleet fleet;
  MatchContext context;
  context.graph = &*graph;
  context.grid = &*grid;
  context.fleet = &fleet;
  context.oracle = &oracle;
  context.config = &cfg;
  BoundProbe probe(context);

  auto rv = [&]() {
    return static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(graph->NumVertices()) - 1));
  };
  const vehicle::ScheduleContext ctx{0.0, 13.3};

  for (int scenario = 0; scenario < 12; ++scenario) {
    // A vehicle with 1-3 pending requests.
    const auto vid = fleet.Add(rv(), 4);
    vehicle::Vehicle& v = fleet.at(vid);
    const int pending = 1 + scenario % 3;
    for (int i = 0; i < pending; ++i) {
      for (int attempt = 0; attempt < 20; ++attempt) {
        vehicle::Request r;
        r.id = scenario * 100 + i;
        r.start = rv();
        r.destination = rv();
        if (r.start == r.destination) continue;
        r.num_riders = 1;
        r.max_wait_s = 900.0;
        r.service_sigma = 0.6;
        auto cands = v.tree().TrialInsert(r, ctx, dist, nullptr);
        if (cands.empty()) continue;
        ASSERT_TRUE(v.mutable_tree()
                        .CommitInsert(r, cands.front().pickup_distance,
                                      0.0, ctx, dist)
                        .ok());
        break;
      }
    }
    if (v.tree().empty()) continue;

    // Probe with fresh requests.
    for (int probe_i = 0; probe_i < 8; ++probe_i) {
      vehicle::Request r;
      r.id = 10000 + scenario * 10 + probe_i;
      r.start = rv();
      r.destination = rv();
      if (r.start == r.destination) continue;
      r.num_riders = 1;
      r.max_wait_s = 900.0;
      r.service_sigma = 0.6;
      const roadnet::Weight direct =
          oracle.Distance(r.start, r.destination);
      if (direct == roadnet::kInfWeight) continue;

      const roadnet::Weight detour_lb = probe.Detour(v, r, direct);
      const roadnet::Weight pickup_lb = probe.Pickup(v, r.start);
      const roadnet::Weight before = v.tree().BestTotalDistance();
      const auto cands = v.tree().TrialInsert(r, ctx, dist, nullptr);
      for (const vehicle::InsertionCandidate& c : cands) {
        const roadnet::Weight delta = c.total_distance - before;
        EXPECT_LE(detour_lb, delta + 1e-6)
            << "detour bound exceeds realized Delta (scenario "
            << scenario << ")";
        EXPECT_LE(pickup_lb, c.pickup_distance + 1e-6)
            << "pickup bound exceeds realized dist_pt";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetourBoundTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace ptrider::core
