#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace ptrider::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatsTest, MergeEqualsBulk) {
  Rng rng(1);
  RunningStats bulk;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    bulk.Add(x);
    (i % 3 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  EXPECT_NEAR(a.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), bulk.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), bulk.min());
  EXPECT_DOUBLE_EQ(a.max(), bulk.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(5.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(PercentilesTest, ExactWhenUnderCapacity) {
  Percentiles p(1024);
  for (int i = 100; i >= 1; --i) p.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.Value(0), 1.0);
  EXPECT_DOUBLE_EQ(p.Value(100), 100.0);
  EXPECT_NEAR(p.Median(), 50.5, 1e-9);
  EXPECT_NEAR(p.Value(95), 95.05, 1e-9);
}

TEST(PercentilesTest, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.Value(50), 0.0);
}

TEST(PercentilesTest, ClampsPercentileArgument) {
  Percentiles p;
  p.Add(7.0);
  EXPECT_DOUBLE_EQ(p.Value(-10), 7.0);
  EXPECT_DOUBLE_EQ(p.Value(250), 7.0);
}

TEST(PercentilesTest, ReservoirApproximatesUniform) {
  Percentiles p(256, /*seed=*/5);
  Rng rng(8);
  for (int i = 0; i < 100000; ++i) p.Add(rng.UniformDouble(0.0, 1.0));
  EXPECT_EQ(p.count(), 100000u);
  // Reservoir of 256 samples: median within a loose tolerance.
  EXPECT_NEAR(p.Median(), 0.5, 0.12);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-100.0);  // clamps to first bucket
  h.Add(0.5);
  h.Add(3.0);
  h.Add(9.9);
  h.Add(42.0);  // clamps to last bucket
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(4), 8.0);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(HistogramTest, ZeroBucketRequestBecomesOne) {
  Histogram h(0.0, 1.0, 0);
  h.Add(0.5);
  EXPECT_EQ(h.bucket_count(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
}

}  // namespace
}  // namespace ptrider::util
