#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "util/random.h"

namespace ptrider::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatsTest, MergeEqualsBulk) {
  Rng rng(1);
  RunningStats bulk;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    bulk.Add(x);
    (i % 3 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  EXPECT_NEAR(a.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), bulk.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), bulk.min());
  EXPECT_DOUBLE_EQ(a.max(), bulk.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(5.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(PercentilesTest, ExactWhenUnderCapacity) {
  Percentiles p(1024);
  for (int i = 100; i >= 1; --i) p.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.Value(0), 1.0);
  EXPECT_DOUBLE_EQ(p.Value(100), 100.0);
  EXPECT_NEAR(p.Median(), 50.5, 1e-9);
  EXPECT_NEAR(p.Value(95), 95.05, 1e-9);
}

TEST(PercentilesTest, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.Value(50), 0.0);
}

TEST(PercentilesTest, ClampsPercentileArgument) {
  Percentiles p;
  p.Add(7.0);
  EXPECT_DOUBLE_EQ(p.Value(-10), 7.0);
  EXPECT_DOUBLE_EQ(p.Value(250), 7.0);
}

TEST(PercentilesTest, ReservoirApproximatesUniform) {
  Percentiles p(256, /*seed=*/5);
  Rng rng(8);
  for (int i = 0; i < 100000; ++i) p.Add(rng.UniformDouble(0.0, 1.0));
  EXPECT_EQ(p.count(), 100000u);
  // Reservoir of 256 samples: median within a loose tolerance.
  EXPECT_NEAR(p.Median(), 0.5, 0.12);
}

TEST(PercentilesMergeTest, ExactMergeEqualsBulk) {
  // Both pools within capacity: the merge is the exact union, so every
  // percentile matches a single recorder fed the concatenated stream.
  Percentiles bulk(1024);
  Percentiles a(1024);
  Percentiles b(1024);
  Rng rng(3);
  for (int i = 0; i < 600; ++i) {
    const double x = rng.UniformDouble(0.0, 100.0);
    bulk.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  for (const double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(a.Value(p), bulk.Value(p)) << "p=" << p;
  }
}

TEST(PercentilesMergeTest, OrderIndependentWhileExact) {
  // Exact merges are unions of multisets, so grouping cannot matter:
  // (a+b)+c == (c+b)+a for every percentile.
  std::vector<Percentiles> parts1;
  std::vector<Percentiles> parts2;
  for (int k = 0; k < 3; ++k) {
    parts1.emplace_back(4096);
    parts2.emplace_back(4096);
  }
  Rng rng(9);
  for (int i = 0; i < 900; ++i) {
    const double x = rng.Normal(10.0, 4.0);
    parts1[static_cast<size_t>(i % 3)].Add(x);
    parts2[static_cast<size_t>(i % 3)].Add(x);
  }
  Percentiles forward(4096);
  forward.Merge(parts1[0]);
  forward.Merge(parts1[1]);
  forward.Merge(parts1[2]);
  Percentiles backward(4096);
  backward.Merge(parts2[2]);
  backward.Merge(parts2[1]);
  backward.Merge(parts2[0]);
  EXPECT_EQ(forward.count(), backward.count());
  for (const double p : {1.0, 25.0, 50.0, 75.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(forward.Value(p), backward.Value(p)) << "p=" << p;
  }
}

TEST(PercentilesMergeTest, CapacityOverflowDeterministicAndClose) {
  // Merging past capacity compacts deterministically: two identical
  // merge sequences agree bit for bit, and the compacted distribution
  // stays close to the exact one.
  const auto build = [] {
    Percentiles merged(128);
    Rng rng(17);
    for (int part = 0; part < 4; ++part) {
      Percentiles p(128);
      for (int i = 0; i < 100; ++i) p.Add(rng.UniformDouble(0.0, 1.0));
      merged.Merge(p);
    }
    return merged;
  };
  const Percentiles m1 = build();
  const Percentiles m2 = build();
  EXPECT_EQ(m1.count(), 400u);
  for (const double p : {5.0, 50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(m1.Value(p), m2.Value(p)) << "p=" << p;
  }

  Percentiles exact(1024);
  Rng rng(17);
  for (int i = 0; i < 400; ++i) exact.Add(rng.UniformDouble(0.0, 1.0));
  EXPECT_NEAR(m1.Median(), exact.Median(), 0.05);
  EXPECT_NEAR(m1.Value(95), exact.Value(95), 0.05);
}

TEST(PercentilesMergeTest, MergeWithEmptySides) {
  Percentiles a(64);
  Percentiles empty(64);
  a.Add(1.0);
  a.Add(2.0);
  a.Merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Value(100), 2.0);

  Percentiles target(64);
  target.Merge(a);  // copy into empty
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.Median(), 1.5);
}

TEST(PercentilesMergeTest, MergeDownsamplesLargerSourceCapacity) {
  // An empty small-capacity target merging a wide source must still end
  // within its own capacity.
  Percentiles small(16);
  Percentiles wide(1024);
  for (int i = 0; i < 500; ++i) wide.Add(static_cast<double>(i));
  small.Merge(wide);
  EXPECT_EQ(small.count(), 500u);
  // Distribution shape survives the compaction.
  EXPECT_NEAR(small.Median(), 249.5, 40.0);
  EXPECT_GE(small.Value(100), small.Value(0));
}

TEST(PercentilesTest, ToStringNamesSloTail) {
  Percentiles p(256);
  for (int i = 1; i <= 1000; ++i) p.Add(static_cast<double>(i));
  const std::string s = p.ToString();
  EXPECT_NE(s.find("n=1000"), std::string::npos);
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p99.9="), std::string::npos);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-100.0);  // clamps to first bucket
  h.Add(0.5);
  h.Add(3.0);
  h.Add(9.9);
  h.Add(42.0);  // clamps to last bucket
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(4), 8.0);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(HistogramTest, ZeroBucketRequestBecomesOne) {
  Histogram h(0.0, 1.0, 0);
  h.Add(0.5);
  EXPECT_EQ(h.bucket_count(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
}

}  // namespace
}  // namespace ptrider::util
