#include "roadnet/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "roadnet/dijkstra.h"
#include "roadnet/paper_example.h"
#include "vehicle/fleet.h"

namespace ptrider::roadnet {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphIoTest, SaveLoadRoundTrip) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  const std::string path = TempPath("graph_roundtrip.csv");
  ASSERT_TRUE(SaveGraphCsv(ex.graph, path).ok());
  auto loaded = LoadGraphCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->NumVertices(), ex.graph.NumVertices());
  ASSERT_EQ(loaded->NumEdges(), ex.graph.NumEdges());
  for (VertexId v = 0; v < static_cast<VertexId>(ex.graph.NumVertices());
       ++v) {
    EXPECT_NEAR(loaded->Coord(v).x, ex.graph.Coord(v).x, 1e-6);
    EXPECT_NEAR(loaded->Coord(v).y, ex.graph.Coord(v).y, 1e-6);
  }
  // Distances survive the round trip.
  DijkstraEngine a(ex.graph);
  DijkstraEngine b(*loaded);
  EXPECT_NEAR(b.Distance(ex.v(2), ex.v(16)), a.Distance(ex.v(2), ex.v(16)),
              1e-6);
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadRejectsMalformedFiles) {
  const std::string path = TempPath("graph_bad.csv");
  {
    std::ofstream out(path);
    out << "V,0,0.0\n";  // too few fields
  }
  EXPECT_FALSE(LoadGraphCsv(path).ok());
  {
    std::ofstream out(path);
    out << "V,1,0.0,0.0\n";  // non-dense vertex ids
  }
  EXPECT_FALSE(LoadGraphCsv(path).ok());
  {
    std::ofstream out(path);
    out << "V,0,0.0,0.0\nV,1,1.0,0.0\nE,0,5,1.0\n";  // bad endpoint
  }
  EXPECT_FALSE(LoadGraphCsv(path).ok());
  {
    std::ofstream out(path);
    out << "X,0,0.0,0.0\n";  // unknown row kind
  }
  EXPECT_FALSE(LoadGraphCsv(path).ok());
  {
    std::ofstream out(path);
    out << "V,0,zero,0.0\n";  // non-numeric coordinate
  }
  EXPECT_FALSE(LoadGraphCsv(path).ok());
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadGraphCsv("/nonexistent/road.csv").ok());
}

TEST(GraphIoTest, LoadAcceptsOutOfOrderVertexRows) {
  // The loader streams rows in one pass; V rows may appear in any order
  // (and after E rows) as long as the ids end up dense.
  const std::string path = TempPath("graph_unordered.csv");
  {
    std::ofstream out(path);
    out << "E,2,0,7.5\n"
        << "V,2,2.0,0.0\n"
        << "V,0,0.0,0.0\n"
        << "V,1,1.0,0.0\n"
        << "E,0,1,4.0\n";
  }
  auto loaded = LoadGraphCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumVertices(), 3u);
  EXPECT_EQ(loaded->NumEdges(), 2u);
  EXPECT_NEAR(loaded->Coord(2).x, 2.0, 1e-12);
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadRejectsDuplicateVertexWithLineNumber) {
  const std::string path = TempPath("graph_dup.csv");
  {
    std::ofstream out(path);
    out << "V,0,0.0,0.0\nV,1,1.0,0.0\nV,1,2.0,0.0\n";
  }
  auto loaded = LoadGraphCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("duplicate"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadRejectsGapInVertexIds) {
  const std::string path = TempPath("graph_gap.csv");
  {
    std::ofstream out(path);
    out << "V,0,0.0,0.0\nV,2,2.0,0.0\n";  // id 1 never defined
  }
  auto loaded = LoadGraphCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("dense"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadRejectsIdTooLargeForFileWithoutAllocating) {
  // A one-line file declaring a huge (but < 2^31) vertex id used to
  // resize the coordinate buffer to id+1 entries — gigabytes demanded
  // by tens of bytes — before the dense-ids check at EOF could reject
  // it. Ids must now be plausible against the file size up front (a
  // dense file needs at least ~8 bytes of V row per id). Found by
  // tools/fuzz_snapshot_load.
  const std::string path = TempPath("graph_hugeid.csv");
  {
    std::ofstream out(path);
    out << "V,2000000000,0.0,0.0\n";
  }
  auto loaded = LoadGraphCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("file can hold"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadReportsLineNumberForBadEdge) {
  const std::string path = TempPath("graph_badedge.csv");
  {
    std::ofstream out(path);
    out << "V,0,0.0,0.0\n"
        << "V,1,1.0,0.0\n"
        << "E,0,1,1.0\n"
        << "E,0,1,-3.0\n";  // negative weight, line 4
  }
  auto loaded = LoadGraphCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 4"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(GraphIoTest, FleetHelpers) {
  const PaperExampleNetwork ex = MakePaperExampleNetwork();
  util::Rng rng(4);
  auto fleet = vehicle::Fleet::UniformRandom(ex.graph, 25, 3, rng);
  ASSERT_TRUE(fleet.ok());
  EXPECT_EQ(fleet->size(), 25u);
  for (const vehicle::Vehicle& v : fleet->vehicles()) {
    EXPECT_TRUE(ex.graph.IsValidVertex(v.location()));
    EXPECT_TRUE(v.IsEmpty());
    EXPECT_EQ(v.capacity(), 3);
  }
  EXPECT_TRUE(fleet->IsValid(0));
  EXPECT_TRUE(fleet->IsValid(24));
  EXPECT_FALSE(fleet->IsValid(25));
  EXPECT_FALSE(fleet->IsValid(-1));

  util::Rng rng2(4);
  EXPECT_FALSE(vehicle::Fleet::UniformRandom(ex.graph, 5, 0, rng2).ok());
}

}  // namespace
}  // namespace ptrider::roadnet
