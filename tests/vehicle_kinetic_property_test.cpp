// Property suite: the kinetic tree's invariants under randomized
// insert / advance / pop sequences on a generated city.
//
//  P1  Every branch always satisfies Definition 2's four conditions
//      (checked via ValidateSequence against the live pending state).
//  P2  All branches are permutations of one stop multiset.
//  P3  Branches stay sorted by total distance; the best branch is first.
//  P4  Inserting a request never lowers the best total distance
//      (the Delta >= 0 invariant the price floor relies on).
//  P5  Advancing along the best branch only ever shrinks the branch set
//      (orderings die monotonically; none resurrect).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/distance_providers.h"
#include "roadnet/distance_oracle.h"
#include "roadnet/graph_generator.h"
#include "util/random.h"
#include "vehicle/kinetic_tree.h"

namespace ptrider::vehicle {
namespace {

struct PropertyParam {
  uint64_t seed;
  int capacity;
  double sigma;
  double max_wait_s;
};

class KineticTreePropertyTest
    : public ::testing::TestWithParam<PropertyParam> {};

std::multiset<std::pair<RequestId, int>> StopMultiset(const Branch& b) {
  std::multiset<std::pair<RequestId, int>> out;
  for (const Stop& s : b.stops) {
    out.insert({s.request, static_cast<int>(s.type)});
  }
  return out;
}

TEST_P(KineticTreePropertyTest, InvariantsUnderRandomOperations) {
  const PropertyParam param = GetParam();
  roadnet::CityGridOptions gopts;
  gopts.rows = 12;
  gopts.cols = 12;
  gopts.seed = param.seed;
  auto graph = roadnet::MakeCityGrid(gopts);
  ASSERT_TRUE(graph.ok());
  roadnet::DistanceOracle oracle(*graph);
  core::ExactDistanceProvider dist(oracle);
  util::Rng rng(param.seed * 31 + 1);

  auto rv = [&]() {
    return static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(graph->NumVertices()) - 1));
  };

  ScheduleContext ctx{0.0, 13.3};
  KineticTree tree(rv(), param.capacity);
  RequestId next_id = 1;

  auto check_invariants = [&](const char* where) {
    const std::vector<Branch>& branches = tree.branches();
    if (tree.NumPendingRequests() > 0) {
      ASSERT_FALSE(branches.empty()) << where;
    }
    // P1 + P3.
    double prev_total = -1.0;
    for (const Branch& b : branches) {
      EXPECT_TRUE(tree.ValidateSequence(b.stops, ctx, dist, nullptr, 0.0,
                                        nullptr, nullptr))
          << where << ": invalid branch survived";
      EXPECT_GE(b.total, prev_total) << where << ": branches unsorted";
      prev_total = b.total;
      // Leg consistency: totals equal the sum of legs.
      double sum = 0.0;
      for (const roadnet::Weight leg : b.legs) sum += leg;
      EXPECT_NEAR(sum, b.total, 1e-6) << where;
    }
    // P2.
    if (!branches.empty()) {
      const auto expected = StopMultiset(branches.front());
      for (const Branch& b : branches) {
        EXPECT_EQ(StopMultiset(b), expected) << where;
      }
    }
  };

  int committed = 0;
  for (int step = 0; step < 60; ++step) {
    const double action = rng.UniformDouble();
    if (action < 0.45) {
      // Trial + commit a new request.
      Request r;
      r.id = next_id++;
      r.start = rv();
      r.destination = rv();
      if (r.start == r.destination) continue;
      r.num_riders = static_cast<int>(rng.UniformInt(1, 2));
      r.max_wait_s = param.max_wait_s;
      r.service_sigma = param.sigma;
      const double before = tree.BestTotalDistance();
      auto candidates = tree.TrialInsert(r, ctx, dist, nullptr);
      if (candidates.empty()) continue;
      // P4 on every candidate.
      for (const InsertionCandidate& c : candidates) {
        EXPECT_GE(c.total_distance + 1e-6, before)
            << "insertion shrank the schedule";
      }
      const size_t pick = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(candidates.size()) - 1));
      ASSERT_TRUE(tree.CommitInsert(r, candidates[pick].pickup_distance,
                                    1.0, ctx, dist)
                      .ok());
      ++committed;
      check_invariants("after commit");
    } else if (!tree.empty()) {
      // Drive one leg of the best branch, then pop the reached stop.
      const Branch best = tree.BestBranch();
      const roadnet::VertexId target = best.stops.front().location;
      auto path = oracle.ShortestPath(tree.root_location(), target);
      ASSERT_TRUE(path.ok());
      const size_t before_branches = tree.NumBranches();
      std::vector<std::vector<Stop>> before_set;
      for (const Branch& b : tree.branches()) before_set.push_back(b.stops);
      for (size_t i = 1; i < path->size(); ++i) {
        const double leg =
            graph->EdgeWeight((*path)[i - 1], (*path)[i]);
        ctx.now_s += leg / ctx.speed_mps;
        ASSERT_TRUE(
            tree.AdvanceTo((*path)[i], leg, ctx, dist, best.stops).ok());
      }
      // P5: no new orderings appear during advancement.
      EXPECT_LE(tree.NumBranches(), before_branches);
      for (const Branch& b : tree.branches()) {
        EXPECT_NE(std::find(before_set.begin(), before_set.end(), b.stops),
                  before_set.end())
            << "an ordering resurrected during advance";
      }
      check_invariants("after advance");
      auto popped = tree.PopFirstStop(ctx);
      ASSERT_TRUE(popped.ok()) << popped.status().ToString();
      check_invariants("after pop");
    }
  }
  // Drain: serve everything to completion.
  while (!tree.empty()) {
    const Branch best = tree.BestBranch();
    auto path =
        oracle.ShortestPath(tree.root_location(), best.stops.front().location);
    ASSERT_TRUE(path.ok());
    for (size_t i = 1; i < path->size(); ++i) {
      const double leg = graph->EdgeWeight((*path)[i - 1], (*path)[i]);
      ctx.now_s += leg / ctx.speed_mps;
      ASSERT_TRUE(
          tree.AdvanceTo((*path)[i], leg, ctx, dist, best.stops).ok());
    }
    ASSERT_TRUE(tree.PopFirstStop(ctx).ok());
    check_invariants("during drain");
  }
  EXPECT_EQ(tree.NumPendingRequests(), 0u);
  EXPECT_GT(committed, 0) << "scenario exercised no commitments";
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, KineticTreePropertyTest,
    ::testing::Values(PropertyParam{1, 3, 0.3, 300.0},
                      PropertyParam{2, 4, 0.5, 600.0},
                      PropertyParam{3, 2, 0.2, 120.0},
                      PropertyParam{4, 6, 1.0, 900.0},
                      PropertyParam{5, 3, 0.0, 300.0},
                      PropertyParam{6, 8, 0.8, 1200.0}));

}  // namespace
}  // namespace ptrider::vehicle
