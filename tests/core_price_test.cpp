#include "core/price.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ptrider::core {
namespace {

TEST(PriceModelTest, PaperRatios) {
  const PriceModel price(0.3, 0.1, 1.0);
  EXPECT_DOUBLE_EQ(price.Fn(1), 0.3);
  EXPECT_DOUBLE_EQ(price.Fn(2), 0.4);
  EXPECT_DOUBLE_EQ(price.Fn(3), 0.5);
  EXPECT_DOUBLE_EQ(price.Fn(4), 0.6);
}

TEST(PriceModelTest, WorkedExampleNumbers) {
  const PriceModel price(0.3, 0.1, 1.0);
  // c1: f2 * (21 - 18 + 7) = 4.
  EXPECT_DOUBLE_EQ(price.Price(2, 21.0, 18.0, 7.0), 4.0);
  // c2 (empty): f2 * (15 - 0 + 7) = 8.8, equivalently the empty formula.
  EXPECT_DOUBLE_EQ(price.Price(2, 15.0, 0.0, 7.0), 8.8);
  EXPECT_DOUBLE_EQ(price.EmptyVehiclePrice(2, 8.0, 7.0), 8.8);
}

TEST(PriceModelTest, DistanceUnitScales) {
  const PriceModel per_km(0.3, 0.1, 1000.0);
  EXPECT_DOUBLE_EQ(per_km.Price(1, 5000.0, 2000.0, 1000.0), 0.3 * 4.0);
}

TEST(PriceModelTest, FloorsAndMonotonicity) {
  const PriceModel price(0.3, 0.1, 1.0);
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double direct = rng.UniformDouble(1.0, 100.0);
    const double cur = rng.UniformDouble(0.0, 200.0);
    const double delta = rng.UniformDouble(0.0, 50.0);
    const int n = static_cast<int>(rng.UniformInt(1, 4));
    // Any realizable price is >= the floor (Delta >= 0).
    EXPECT_GE(price.Price(n, cur + delta, cur, direct) + 1e-12,
              price.MinPrice(n, direct));
    // Price grows with detour.
    EXPECT_GE(price.Price(n, cur + delta + 1.0, cur, direct),
              price.Price(n, cur + delta, cur, direct));
    // More riders pay a higher ratio.
    EXPECT_GE(price.Price(n + 1, cur + delta, cur, direct),
              price.Price(n, cur + delta, cur, direct));
    // PriceWithDetourLb lower-bounds the actual price for any
    // detour >= the bound.
    EXPECT_LE(price.PriceWithDetourLb(n, delta, direct),
              price.Price(n, cur + delta, cur, direct) + 1e-12);
  }
}

TEST(PriceModelTest, EmptyVehiclePriceIncreasesWithPickup) {
  const PriceModel price(0.3, 0.1, 1.0);
  EXPECT_LT(price.EmptyVehiclePrice(2, 5.0, 7.0),
            price.EmptyVehiclePrice(2, 6.0, 7.0));
}

TEST(PriceModelTest, ConfigConstructor) {
  Config cfg;
  cfg.price_base_ratio = 0.5;
  cfg.price_per_extra_rider = 0.2;
  cfg.price_distance_unit_m = 10.0;
  const PriceModel price(cfg);
  EXPECT_DOUBLE_EQ(price.Fn(2), 0.7);
  EXPECT_DOUBLE_EQ(price.MinPrice(2, 100.0), 7.0);
}

TEST(ConfigTest, ValidateCatchesBadValues) {
  Config cfg;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.speed_mps = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = Config{};
  cfg.vehicle_capacity = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = Config{};
  cfg.default_max_wait_s = -1.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = Config{};
  cfg.default_service_sigma = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = Config{};
  cfg.price_distance_unit_m = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = Config{};
  cfg.max_planned_pickup_s = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, PickupRadiusDerived) {
  Config cfg;
  cfg.speed_mps = 10.0;
  cfg.max_planned_pickup_s = 60.0;
  EXPECT_DOUBLE_EQ(cfg.MaxPickupRadiusM(), 600.0);
}

TEST(ConfigTest, MatcherNames) {
  EXPECT_STREQ(MatcherAlgorithmName(MatcherAlgorithm::kNaive), "naive");
  EXPECT_STREQ(MatcherAlgorithmName(MatcherAlgorithm::kSingleSide),
               "single-side");
  EXPECT_STREQ(MatcherAlgorithmName(MatcherAlgorithm::kDualSide),
               "dual-side");
}

}  // namespace
}  // namespace ptrider::core
